//! Stall watchdog: graceful degradation of the doorbell protocol.
//!
//! The software-managed-queue fast path relies on the device's
//! doorbell-request flag to skip MMIO doorbells. If the fetcher's parking
//! flag write is lost, the host believes no doorbell is needed and the
//! queue wedges. The [`Watchdog`] tracks request-level progress: when
//! timeouts fire it degrades to *doorbell-always* mode (every enqueue
//! rings, so a wedged fetcher always restarts), and once completions have
//! flowed cleanly for a quiet period it restores the optimized mode.
//!
//! The watchdog is pure state — the executor feeds it stall/progress
//! events in simulated time and applies its mode to the queue pair — so it
//! is deterministic and trivially testable.

use kus_sim::stats::Counter;
use kus_sim::trace::Category;
use kus_sim::{Span, Time, Tracer};

/// Doorbell operating mode chosen by the watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoorbellMode {
    /// Fast path: ring only when the device requests it.
    Optimized,
    /// Degraded: ring on every enqueue until the queue proves healthy.
    Degraded,
}

/// Tracks SWQ health and decides the doorbell mode.
///
/// # Examples
///
/// ```
/// use kus_fiber::watchdog::{DoorbellMode, Watchdog};
/// use kus_sim::{Span, Time};
///
/// let mut w = Watchdog::new(Span::from_us(100));
/// let t = |us| Time::ZERO + Span::from_us(us);
/// assert!(w.on_stall(t(10)), "first stall degrades");
/// assert!(!w.on_stall(t(11)), "already degraded");
/// assert!(!w.on_progress(t(50)), "quiet period not over");
/// assert!(w.on_progress(t(200)), "healthy again: restore");
/// assert_eq!(w.mode(), DoorbellMode::Optimized);
/// ```
#[derive(Debug)]
pub struct Watchdog {
    mode: DoorbellMode,
    quiet_period: Span,
    /// Last time a stall was observed (start of the health probation).
    last_stall: Time,
    /// Times the watchdog fell back to doorbell-always mode.
    pub degradations: Counter,
    /// Times the optimized mode was restored after a quiet period.
    pub restorations: Counter,
    tracer: Tracer,
    track: u32,
}

impl Watchdog {
    /// Creates a watchdog that restores the optimized mode after
    /// `quiet_period` of stall-free progress.
    pub fn new(quiet_period: Span) -> Watchdog {
        Watchdog {
            mode: DoorbellMode::Optimized,
            quiet_period,
            last_stall: Time::ZERO,
            degradations: Counter::default(),
            restorations: Counter::default(),
            tracer: Tracer::off(),
            track: 0,
        }
    }

    /// Attaches a tracer; `track` is the timeline row (the owning core id).
    pub fn set_tracer(&mut self, tracer: Tracer, track: u32) {
        self.tracer = tracer;
        self.track = track;
    }

    /// Current mode.
    pub fn mode(&self) -> DoorbellMode {
        self.mode
    }

    /// True while degraded to doorbell-always.
    pub fn is_degraded(&self) -> bool {
        self.mode == DoorbellMode::Degraded
    }

    /// Reports a detected stall (a request timed out). Returns `true` only
    /// on the transition into degraded mode, so the caller applies the
    /// queue-pair change exactly once.
    pub fn on_stall(&mut self, now: Time) -> bool {
        self.last_stall = now;
        if self.mode == DoorbellMode::Degraded {
            return false;
        }
        self.mode = DoorbellMode::Degraded;
        self.degradations.incr();
        self.tracer.instant(Category::Fiber, "watchdog.degrade", self.track, self.degradations.get(), 0);
        true
    }

    /// Reports healthy progress (a completion arrived in time). Returns
    /// `true` only on the transition back to optimized mode, after a full
    /// quiet period without stalls.
    pub fn on_progress(&mut self, now: Time) -> bool {
        if self.mode == DoorbellMode::Optimized {
            return false;
        }
        if now.saturating_since(self.last_stall) < self.quiet_period {
            return false;
        }
        self.mode = DoorbellMode::Optimized;
        self.restorations.incr();
        self.tracer.instant(Category::Fiber, "watchdog.restore", self.track, self.restorations.get(), 0);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> Time {
        Time::ZERO + Span::from_us(us)
    }

    #[test]
    fn starts_optimized() {
        let w = Watchdog::new(Span::from_us(10));
        assert_eq!(w.mode(), DoorbellMode::Optimized);
        assert!(!w.is_degraded());
    }

    #[test]
    fn degrades_once_per_episode() {
        let mut w = Watchdog::new(Span::from_us(10));
        assert!(w.on_stall(t(1)));
        assert!(!w.on_stall(t(2)));
        assert!(!w.on_stall(t(3)));
        assert_eq!(w.degradations.get(), 1);
        assert!(w.is_degraded());
    }

    #[test]
    fn repeated_stalls_extend_probation() {
        let mut w = Watchdog::new(Span::from_us(10));
        w.on_stall(t(0));
        w.on_stall(t(8));
        // 10us after the *latest* stall, not the first.
        assert!(!w.on_progress(t(12)));
        assert!(w.on_progress(t(18)));
        assert_eq!(w.restorations.get(), 1);
    }

    #[test]
    fn progress_without_stall_is_a_no_op() {
        let mut w = Watchdog::new(Span::from_us(10));
        assert!(!w.on_progress(t(100)));
        assert_eq!(w.restorations.get(), 0);
    }

    #[test]
    fn full_cycle_counts_both_transitions() {
        let mut w = Watchdog::new(Span::from_us(10));
        for episode in 0..3u64 {
            let base = episode * 100;
            assert!(w.on_stall(t(base + 1)));
            assert!(w.on_progress(t(base + 50)));
        }
        assert_eq!(w.degradations.get(), 3);
        assert_eq!(w.restorations.get(), 3);
    }
}
