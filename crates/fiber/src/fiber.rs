//! Fibers: ultra-light user-level threads as polled futures.
//!
//! The paper's support software replaces kernel threads with cooperative
//! user-level threads whose context switch costs 20–50 ns. In this
//! reproduction a fiber's *logic* is a Rust `async` state machine (so
//! pointer-chasing application code reads naturally), while its *timing* is
//! charged by the execution layer that polls it.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll, Waker};

/// Identifies a fiber within one executor (dense, starting at zero).
pub type FiberId = usize;

/// Why a fiber returned from a poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollOutcome {
    /// The fiber finished.
    Done,
    /// The fiber cooperatively yielded (still runnable).
    Yielded,
    /// The fiber is blocked waiting for a value or event.
    Blocked,
}

/// A fiber: an id, its future, and its cooperative-yield flag.
pub struct Fiber {
    id: FiberId,
    future: Pin<Box<dyn Future<Output = ()>>>,
    yield_flag: YieldFlag,
    done: bool,
}

impl std::fmt::Debug for Fiber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fiber").field("id", &self.id).field("done", &self.done).finish()
    }
}

impl Fiber {
    /// Wraps `future` as fiber `id`. The `yield_flag` must be the same cell
    /// the future's [`yield_now`](crate::primitives::yield_now) uses.
    pub fn new(id: FiberId, yield_flag: YieldFlag, future: impl Future<Output = ()> + 'static) -> Fiber {
        Fiber { id, future: Box::pin(future), yield_flag, done: false }
    }

    /// This fiber's id.
    pub fn id(&self) -> FiberId {
        self.id
    }

    /// Whether the fiber has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Polls the fiber once.
    ///
    /// # Panics
    ///
    /// Panics if the fiber already finished.
    pub fn poll(&mut self) -> PollOutcome {
        assert!(!self.done, "polling a finished fiber");
        self.yield_flag.clear();
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        match self.future.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                self.done = true;
                PollOutcome::Done
            }
            Poll::Pending => {
                if self.yield_flag.take() {
                    PollOutcome::Yielded
                } else {
                    PollOutcome::Blocked
                }
            }
        }
    }
}

/// The cooperative-yield flag shared between a fiber and its futures.
#[derive(Debug, Clone, Default)]
pub struct YieldFlag(std::rc::Rc<std::cell::Cell<bool>>);

impl YieldFlag {
    /// Creates a cleared flag.
    pub fn new() -> YieldFlag {
        YieldFlag::default()
    }

    /// Marks that the pending return is a cooperative yield.
    pub fn set(&self) {
        self.0.set(true);
    }

    fn clear(&self) {
        self.0.set(false);
    }

    fn take(&self) -> bool {
        self.0.replace(false)
    }
}

/// A waker that does nothing: this executor decides readiness itself, from
/// simulation events, never from `Waker::wake`.
pub fn noop_waker() -> Waker {
    use std::sync::Arc;
    struct Noop;
    impl std::task::Wake for Noop {
        fn wake(self: Arc<Self>) {}
    }
    Waker::from(Arc::new(Noop))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::{yield_now, OneShot};

    #[test]
    fn fiber_runs_to_completion() {
        let mut f = Fiber::new(0, YieldFlag::new(), async {});
        assert_eq!(f.poll(), PollOutcome::Done);
        assert!(f.is_done());
    }

    #[test]
    fn yield_reports_yielded_then_done() {
        let flag = YieldFlag::new();
        let mut f = Fiber::new(1, flag.clone(), {
            let flag = flag.clone();
            async move {
                yield_now(&flag).await;
                yield_now(&flag).await;
            }
        });
        assert_eq!(f.poll(), PollOutcome::Yielded);
        assert_eq!(f.poll(), PollOutcome::Yielded);
        assert_eq!(f.poll(), PollOutcome::Done);
    }

    #[test]
    fn blocked_until_value_set() {
        let (slot, fut) = OneShot::<u32>::new();
        let got = std::rc::Rc::new(std::cell::Cell::new(0));
        let g = got.clone();
        let mut f = Fiber::new(2, YieldFlag::new(), async move {
            g.set(fut.await);
        });
        assert_eq!(f.poll(), PollOutcome::Blocked);
        assert_eq!(f.poll(), PollOutcome::Blocked);
        slot.set(42);
        assert_eq!(f.poll(), PollOutcome::Done);
        assert_eq!(got.get(), 42);
    }

    #[test]
    #[should_panic(expected = "polling a finished fiber")]
    fn polling_done_fiber_panics() {
        let mut f = Fiber::new(0, YieldFlag::new(), async {});
        let _ = f.poll();
        let _ = f.poll();
    }
}
