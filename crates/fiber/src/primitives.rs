//! Async primitives fibers block on: one-shot value cells and cooperative
//! yields.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use crate::fiber::YieldFlag;

/// The write side of a one-shot value.
#[derive(Debug)]
pub struct OneShot<T>(Rc<RefCell<Option<T>>>);

/// The future side of a one-shot value.
#[derive(Debug)]
pub struct OneShotFuture<T>(Rc<RefCell<Option<T>>>);

impl<T> OneShot<T> {
    /// Creates a linked setter/future pair.
    ///
    /// # Examples
    ///
    /// ```
    /// use kus_fiber::primitives::OneShot;
    ///
    /// let (slot, fut) = OneShot::new();
    /// slot.set(7u32);
    /// # let _ = fut;
    /// ```
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> (OneShot<T>, OneShotFuture<T>) {
        let cell = Rc::new(RefCell::new(None));
        (OneShot(cell.clone()), OneShotFuture(cell))
    }

    /// Fills the slot. Awaiting fibers observe the value on their next poll.
    ///
    /// # Panics
    ///
    /// Panics if the slot was already set.
    pub fn set(&self, v: T) {
        let prev = self.0.borrow_mut().replace(v);
        assert!(prev.is_none(), "one-shot value set twice");
    }

    /// Whether the value has been set (and not yet consumed).
    pub fn is_set(&self) -> bool {
        self.0.borrow().is_some()
    }
}

impl<T> Future for OneShotFuture<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<T> {
        match self.0.borrow_mut().take() {
            Some(v) => Poll::Ready(v),
            None => Poll::Pending,
        }
    }
}

/// Cooperatively yields once: the fiber reports
/// [`Yielded`](crate::fiber::PollOutcome::Yielded) and remains runnable.
///
/// # Examples
///
/// ```
/// use kus_fiber::fiber::{Fiber, PollOutcome, YieldFlag};
/// use kus_fiber::primitives::yield_now;
///
/// let flag = YieldFlag::new();
/// let mut f = Fiber::new(0, flag.clone(), {
///     let flag = flag.clone();
///     async move { yield_now(&flag).await; }
/// });
/// assert_eq!(f.poll(), PollOutcome::Yielded);
/// assert_eq!(f.poll(), PollOutcome::Done);
/// ```
pub fn yield_now(flag: &YieldFlag) -> YieldNow {
    YieldNow { flag: flag.clone(), polled: false }
}

/// Future returned by [`yield_now`].
#[derive(Debug)]
pub struct YieldNow {
    flag: YieldFlag,
    polled: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if self.polled {
            Poll::Ready(())
        } else {
            self.polled = true;
            self.flag.set();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fiber::{Fiber, PollOutcome};

    #[test]
    fn oneshot_delivers_once() {
        let (slot, fut) = OneShot::<u64>::new();
        assert!(!slot.is_set());
        slot.set(5);
        assert!(slot.is_set());
        let mut f = Fiber::new(0, YieldFlag::new(), async move {
            assert_eq!(fut.await, 5);
        });
        assert_eq!(f.poll(), PollOutcome::Done);
    }

    #[test]
    #[should_panic(expected = "set twice")]
    fn double_set_panics() {
        let (slot, _fut) = OneShot::<u64>::new();
        slot.set(1);
        slot.set(2);
    }

    #[test]
    fn interleaved_oneshots() {
        let (a_slot, a_fut) = OneShot::<u32>::new();
        let (b_slot, b_fut) = OneShot::<u32>::new();
        let sum = Rc::new(std::cell::Cell::new(0));
        let s = sum.clone();
        let mut f = Fiber::new(0, YieldFlag::new(), async move {
            let a = a_fut.await;
            let b = b_fut.await;
            s.set(a + b);
        });
        assert_eq!(f.poll(), PollOutcome::Blocked);
        a_slot.set(1);
        assert_eq!(f.poll(), PollOutcome::Blocked);
        b_slot.set(2);
        assert_eq!(f.poll(), PollOutcome::Done);
        assert_eq!(sum.get(), 3);
    }
}
