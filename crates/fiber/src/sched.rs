//! Scheduling policies for the user-level thread library.
//!
//! Two policies, matching the paper's two mechanisms:
//!
//! - [`RoundRobin`] — the prefetch path: "the scheduler simply switches
//!   between threads in a round-robin fashion".
//! - [`Fifo`] — the software-queue path: "the threads are managed in FIFO
//!   order, ensuring a deterministic access sequence for replay".

use std::collections::VecDeque;

use crate::fiber::FiberId;

/// A scheduler policy: tracks which fibers are ready and picks the next one.
pub trait SchedPolicy: std::fmt::Debug {
    /// Adds a fiber (initially ready).
    fn register(&mut self, id: FiberId);
    /// Removes a finished fiber.
    fn deregister(&mut self, id: FiberId);
    /// Marks a blocked fiber runnable again.
    fn make_ready(&mut self, id: FiberId);
    /// Marks a fiber blocked.
    fn make_blocked(&mut self, id: FiberId);
    /// Marks a fiber blocked on a *timer* rather than a memory operation.
    /// A strict-rotation policy must not hand the core to a timer-waiter
    /// (the thread sits on a sleep queue, off the run ring, until its
    /// deadline); policies that only circulate ready fibers need no
    /// distinction, so the default forwards to [`make_blocked`].
    ///
    /// [`make_blocked`]: SchedPolicy::make_blocked
    fn make_sleeping(&mut self, id: FiberId) {
        self.make_blocked(id);
    }
    /// Picks the fiber to run after `current` (which may have blocked,
    /// yielded, or finished). Returns `None` if nothing is ready.
    fn pick_next(&mut self, current: Option<FiberId>) -> Option<FiberId>;
    /// Whether any fiber is ready.
    fn has_ready(&self) -> bool;
    /// Live (registered, unfinished) fibers.
    fn live(&self) -> usize;
    /// Times [`pick_next`](SchedPolicy::pick_next) handed the core to a
    /// fiber that was *not* ready — the strict-rotation stalls that cost the
    /// prefetch mechanism its scaling. Policies that only circulate ready
    /// fibers never stall, so the default is zero.
    fn stall_handoffs(&self) -> u64 {
        0
    }
    /// Records a fiber crash-and-respawn (fault injection): the fiber
    /// leaves the run ring for its respawn window — the executor parks it
    /// as a timer-waiter — and rejoins when its deadline wakes it. The
    /// default just counts nothing; policies override to keep a tally.
    fn on_crash(&mut self, id: FiberId) {
        let _ = id;
    }
    /// Fiber crashes recorded via [`on_crash`](SchedPolicy::on_crash).
    fn crashes(&self) -> u64 {
        0
    }
}

/// Strict round-robin over registration order — the next fiber in the ring
/// gets the processor *whether or not it is ready*, exactly like a
/// cooperative Pth-style scheduler: if the chosen thread's load has not
/// returned yet, the core simply stalls on it (the hardware MSHR wait) until
/// the fill arrives.
#[derive(Debug, Default)]
pub struct RoundRobin {
    ring: Vec<FiberId>,
    ready: Vec<bool>,    // indexed by FiberId
    sleeping: Vec<bool>, // indexed by FiberId: timer-waiters skipped by rotation
    live: usize,
    stall_handoffs: u64,
    crashes: u64,
}

impl RoundRobin {
    /// Creates an empty scheduler.
    pub fn new() -> RoundRobin {
        RoundRobin::default()
    }

    fn slot(&mut self, id: FiberId) -> &mut bool {
        if self.ready.len() <= id {
            self.ready.resize(id + 1, false);
        }
        &mut self.ready[id]
    }

    fn sleep_slot(&mut self, id: FiberId) -> &mut bool {
        if self.sleeping.len() <= id {
            self.sleeping.resize(id + 1, false);
        }
        &mut self.sleeping[id]
    }

    fn is_sleeping(&self, id: FiberId) -> bool {
        self.sleeping.get(id).copied().unwrap_or(false)
    }
}

impl SchedPolicy for RoundRobin {
    fn register(&mut self, id: FiberId) {
        assert!(!self.ring.contains(&id), "fiber {id} registered twice");
        self.ring.push(id);
        *self.slot(id) = true;
        self.live += 1;
    }

    fn deregister(&mut self, id: FiberId) {
        if let Some(pos) = self.ring.iter().position(|&f| f == id) {
            self.ring.remove(pos);
            self.ready[id] = false;
            *self.sleep_slot(id) = false;
            self.live -= 1;
        }
    }

    fn make_ready(&mut self, id: FiberId) {
        *self.slot(id) = true;
        *self.sleep_slot(id) = false;
    }

    fn make_blocked(&mut self, id: FiberId) {
        *self.slot(id) = false;
        *self.sleep_slot(id) = false;
    }

    fn make_sleeping(&mut self, id: FiberId) {
        *self.slot(id) = false;
        *self.sleep_slot(id) = true;
    }

    fn pick_next(&mut self, current: Option<FiberId>) -> Option<FiberId> {
        if self.ring.is_empty() {
            return None;
        }
        let start = match current {
            Some(c) => match self.ring.iter().position(|&f| f == c) {
                Some(p) => p + 1,
                None => 0, // current already deregistered
            },
            None => 0,
        };
        // Strict rotation: hand the core to the successor unconditionally —
        // if its load has not returned, the core stalls on it. Timer-waiters
        // are the one exception: they live on the sleep queue, not the run
        // ring, so the rotation passes over them.
        for i in 0..self.ring.len() {
            let id = self.ring[(start + i) % self.ring.len()];
            if !self.is_sleeping(id) {
                if !self.ready.get(id).copied().unwrap_or(false) {
                    self.stall_handoffs += 1;
                }
                return Some(id);
            }
        }
        None
    }

    fn has_ready(&self) -> bool {
        self.ring.iter().any(|&f| self.ready.get(f).copied().unwrap_or(false))
    }

    fn live(&self) -> usize {
        self.live
    }

    fn stall_handoffs(&self) -> u64 {
        self.stall_handoffs
    }

    fn on_crash(&mut self, _id: FiberId) {
        self.crashes += 1;
    }

    fn crashes(&self) -> u64 {
        self.crashes
    }
}

/// FIFO ready queue: fibers run in the order they became ready.
#[derive(Debug, Default)]
pub struct Fifo {
    queue: VecDeque<FiberId>,
    live: usize,
    crashes: u64,
}

impl Fifo {
    /// Creates an empty scheduler.
    pub fn new() -> Fifo {
        Fifo::default()
    }
}

impl SchedPolicy for Fifo {
    fn register(&mut self, id: FiberId) {
        self.queue.push_back(id);
        self.live += 1;
    }

    fn deregister(&mut self, _id: FiberId) {
        self.live -= 1;
    }

    fn make_ready(&mut self, id: FiberId) {
        debug_assert!(!self.queue.contains(&id), "fiber {id} made ready twice");
        self.queue.push_back(id);
    }

    fn make_blocked(&mut self, _id: FiberId) {
        // Blocking removes a fiber from circulation implicitly: it simply is
        // not re-queued until make_ready.
    }

    fn pick_next(&mut self, _current: Option<FiberId>) -> Option<FiberId> {
        self.queue.pop_front()
    }

    fn has_ready(&self) -> bool {
        !self.queue.is_empty()
    }

    fn live(&self) -> usize {
        self.live
    }

    fn on_crash(&mut self, _id: FiberId) {
        self.crashes += 1;
    }

    fn crashes(&self) -> u64 {
        self.crashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_in_order() {
        let mut rr = RoundRobin::new();
        for i in 0..3 {
            rr.register(i);
        }
        assert_eq!(rr.pick_next(Some(0)), Some(1));
        assert_eq!(rr.pick_next(Some(1)), Some(2));
        assert_eq!(rr.pick_next(Some(2)), Some(0));
    }

    #[test]
    fn round_robin_is_strict_rotation_even_when_blocked() {
        let mut rr = RoundRobin::new();
        for i in 0..3 {
            rr.register(i);
        }
        // Blocking does not change who comes next — the executor stalls on
        // the successor like the hardware would.
        rr.make_blocked(1);
        assert_eq!(rr.pick_next(Some(0)), Some(1));
        rr.make_blocked(2);
        rr.make_blocked(0);
        assert_eq!(rr.pick_next(Some(2)), Some(0));
        assert!(!rr.has_ready());
        rr.make_ready(1);
        assert!(rr.has_ready());
    }

    #[test]
    fn round_robin_prefers_successor_of_current() {
        let mut rr = RoundRobin::new();
        for i in 0..4 {
            rr.register(i);
        }
        // After fiber 1, fiber 2 runs even though 0 is also ready.
        assert_eq!(rr.pick_next(Some(1)), Some(2));
    }

    #[test]
    fn round_robin_deregister() {
        let mut rr = RoundRobin::new();
        for i in 0..3 {
            rr.register(i);
        }
        rr.deregister(1);
        assert_eq!(rr.live(), 2);
        assert_eq!(rr.pick_next(Some(0)), Some(2));
        assert_eq!(rr.pick_next(Some(2)), Some(0));
    }

    #[test]
    fn round_robin_counts_stall_handoffs() {
        let mut rr = RoundRobin::new();
        for i in 0..3 {
            rr.register(i);
        }
        assert_eq!(rr.pick_next(Some(0)), Some(1)); // ready: no stall
        rr.make_blocked(2);
        assert_eq!(rr.pick_next(Some(1)), Some(2)); // blocked: stall
        assert_eq!(rr.stall_handoffs(), 1);
        rr.make_blocked(0);
        assert_eq!(rr.pick_next(Some(2)), Some(0)); // blocked: stall
        assert_eq!(rr.stall_handoffs(), 2);
        // Fifo never hands out non-ready fibers: default is zero.
        let f = Fifo::new();
        assert_eq!(f.stall_handoffs(), 0);
    }

    #[test]
    fn fifo_runs_in_ready_order() {
        let mut f = Fifo::new();
        f.register(0);
        f.register(1);
        assert_eq!(f.pick_next(None), Some(0));
        assert_eq!(f.pick_next(None), Some(1));
        assert!(!f.has_ready());
        f.make_ready(1);
        f.make_ready(0);
        assert_eq!(f.pick_next(None), Some(1));
        assert_eq!(f.pick_next(None), Some(0));
    }

    #[test]
    fn crash_tally() {
        let mut rr = RoundRobin::new();
        rr.register(0);
        rr.register(1);
        assert_eq!(rr.crashes(), 0);
        rr.on_crash(0);
        rr.on_crash(1);
        assert_eq!(rr.crashes(), 2);
        // Crashing does not change membership: the executor parks the fiber
        // as a timer-waiter for its respawn window separately.
        assert_eq!(rr.live(), 2);
        let mut f = Fifo::new();
        f.register(0);
        f.on_crash(0);
        assert_eq!(f.crashes(), 1);
    }

    #[test]
    fn fifo_live_count() {
        let mut f = Fifo::new();
        f.register(0);
        f.register(1);
        f.deregister(0);
        assert_eq!(f.live(), 1);
    }
}
