//! Resource-pressure counters: occupancy histograms and batching factors
//! for the shared resources the paper names as throughput limiters — the
//! 10 line-fill buffers per core, the chip-level PCIe credit queue, the
//! SWQ descriptor ring — plus doorbell batching and fetcher burst
//! efficiency.
//!
//! Every histogram is built as one [`HdrHistogram`] shard per trace track
//! and then merged in ascending track order, the same discipline
//! `kus-load` uses: bucket-wise merge is exact and order-independent, so a
//! profile assembled from a parallel sweep is byte-identical to a serial
//! one at any `--jobs`.

use std::collections::BTreeMap;

use kus_sim::stats::HdrHistogram;
use kus_sim::time::Span;
use kus_sim::trace::{Category, TraceEvent};

/// Trace track the platform assigns the chip-level device-path credit queue.
pub const TRACK_DEVICE_CREDITS: u32 = 400;
/// Trace track for the chip-level DRAM-path credit queue.
pub const TRACK_DRAM_CREDITS: u32 = 401;
/// Trace track for the on-device memory station.
pub const TRACK_DEVICE_STATION: u32 = 420;

/// Occupancy histograms record dimensionless levels (entries in use), not
/// durations; they ride in [`HdrHistogram`]s — exact for levels below 64 —
/// so the level `n` is encoded as `n` picoseconds.
#[derive(Debug, Clone, Default)]
pub struct PressureReport {
    /// LFB entries in use after each alloc/merge/fill, across all cores.
    pub lfb_occupancy: HdrHistogram,
    /// Allocation attempts rejected because every LFB was busy.
    pub lfb_full_events: u64,
    /// Ops that registered a waiter for a free LFB slot.
    pub lfb_waits: u64,
    /// Chip-level device-path credits in use at each successful acquire.
    pub chip_queue_at_acquire: HdrHistogram,
    /// SWQ ring descriptors pending after each enqueue.
    pub ring_at_enqueue: HdrHistogram,
    /// On-device memory station occupancy at each request start.
    pub station_occupancy: HdrHistogram,
    /// PCIe link serialization queueing delay per TLP (picoseconds).
    pub link_queue_delay: HdrHistogram,
    /// SWQ descriptors enqueued by the host.
    pub enqueues: u64,
    /// MMIO doorbells actually rung.
    pub doorbells: u64,
    /// Descriptors the device fetcher pulled off the ring.
    pub fetched: u64,
    /// Burst DMA reads the fetcher issued to pull them.
    pub fetch_bursts: u64,
}

impl PressureReport {
    /// Descriptors per doorbell: how well MMIO writes amortize (1.0 = one
    /// doorbell per request, higher is better).
    pub fn doorbell_batching(&self) -> f64 {
        if self.doorbells == 0 {
            0.0
        } else {
            self.enqueues as f64 / self.doorbells as f64
        }
    }

    /// Descriptors per fetch burst (up to the configured burst size).
    pub fn burst_efficiency(&self) -> f64 {
        if self.fetch_bursts == 0 {
            0.0
        } else {
            self.fetched as f64 / self.fetch_bursts as f64
        }
    }
}

fn record_level(shards: &mut BTreeMap<u32, HdrHistogram>, track: u32, level: u64) {
    shards.entry(track).or_default().record(Span::from_ps(level));
}

fn merge_shards(shards: BTreeMap<u32, HdrHistogram>) -> HdrHistogram {
    let mut out = HdrHistogram::new();
    for shard in shards.values() {
        out.merge(shard);
    }
    out
}

pub(crate) fn build(events: &[TraceEvent]) -> PressureReport {
    let mut lfb: BTreeMap<u32, HdrHistogram> = BTreeMap::new();
    let mut chip: BTreeMap<u32, HdrHistogram> = BTreeMap::new();
    let mut ring: BTreeMap<u32, HdrHistogram> = BTreeMap::new();
    let mut station: BTreeMap<u32, HdrHistogram> = BTreeMap::new();
    let mut link: BTreeMap<u32, HdrHistogram> = BTreeMap::new();
    let mut p = PressureReport::default();
    for e in events {
        match (e.cat, e.name) {
            (Category::Mem, "lfb.alloc" | "lfb.merge" | "lfb.fill") => {
                record_level(&mut lfb, e.track, e.a1)
            }
            (Category::Mem, "lfb.full") => p.lfb_full_events += 1,
            (Category::Mem, "lfb.wait") => p.lfb_waits += 1,
            (Category::Mem, "credit.occ") if e.track == TRACK_DEVICE_CREDITS => {
                record_level(&mut chip, e.track, e.a0)
            }
            (Category::Mem, "station.occ") => record_level(&mut station, e.track, e.a0),
            (Category::Pcie, "tlp.queue") => record_level(&mut link, e.track, e.a0),
            (Category::Swq, "swq.enqueue") => {
                p.enqueues += 1;
                record_level(&mut ring, e.track, e.a1);
            }
            (Category::Swq, "swq.doorbell") => p.doorbells += 1,
            (Category::Swq, "swq.fetch") => p.fetched += 1,
            (Category::Device, "fetch.burst") => p.fetch_bursts += 1,
            _ => {}
        }
    }
    p.lfb_occupancy = merge_shards(lfb);
    p.chip_queue_at_acquire = merge_shards(chip);
    p.ring_at_enqueue = merge_shards(ring);
    p.station_occupancy = merge_shards(station);
    p.link_queue_delay = merge_shards(link);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use kus_sim::time::Time;
    use kus_sim::trace::Phase;

    fn ev(cat: Category, name: &'static str, track: u32, a0: u64, a1: u64) -> TraceEvent {
        TraceEvent { at: Time::ZERO, cat, name, phase: Phase::Instant, track, a0, a1 }
    }

    #[test]
    fn histograms_and_factors() {
        let evs = vec![
            ev(Category::Mem, "lfb.alloc", 0, 5, 1),
            ev(Category::Mem, "lfb.alloc", 1, 6, 3),
            ev(Category::Mem, "lfb.full", 0, 7, 10),
            ev(Category::Mem, "lfb.wait", 0, 7, 1),
            ev(Category::Mem, "credit.occ", TRACK_DEVICE_CREDITS, 14, 0),
            ev(Category::Mem, "credit.occ", TRACK_DRAM_CREDITS, 40, 0), // not the chip queue
            ev(Category::Swq, "swq.enqueue", 0, 1, 4),
            ev(Category::Swq, "swq.enqueue", 0, 2, 5),
            ev(Category::Swq, "swq.doorbell", 0, 1, 0),
            ev(Category::Swq, "swq.fetch", 100, 1, 1),
            ev(Category::Swq, "swq.fetch", 100, 2, 0),
            ev(Category::Device, "fetch.burst", 100, 1, 1),
        ];
        let p = build(&evs);
        assert_eq!(p.lfb_occupancy.count(), 2);
        assert_eq!(p.lfb_occupancy.max(), Span::from_ps(3));
        assert_eq!(p.lfb_full_events, 1);
        assert_eq!(p.lfb_waits, 1);
        assert_eq!(p.chip_queue_at_acquire.count(), 1);
        assert_eq!(p.chip_queue_at_acquire.max(), Span::from_ps(14));
        assert_eq!(p.ring_at_enqueue.quantile(1.0), Span::from_ps(5));
        assert_eq!((p.enqueues, p.doorbells), (2, 1));
        assert!((p.doorbell_batching() - 2.0).abs() < 1e-12);
        assert!((p.burst_efficiency() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_is_all_zero() {
        let p = build(&[]);
        assert_eq!(p.lfb_occupancy.count(), 0);
        assert_eq!(p.doorbell_batching(), 0.0);
        assert_eq!(p.burst_efficiency(), 0.0);
    }

    #[test]
    fn shard_merge_is_order_independent() {
        // The same samples attributed to different tracks merge to the same
        // histogram — the property that makes profiles `--jobs`-stable.
        let a = build(&[
            ev(Category::Mem, "lfb.alloc", 0, 0, 7),
            ev(Category::Mem, "lfb.alloc", 3, 0, 2),
        ]);
        let b = build(&[
            ev(Category::Mem, "lfb.alloc", 3, 0, 2),
            ev(Category::Mem, "lfb.alloc", 0, 0, 7),
        ]);
        assert_eq!(a.lfb_occupancy.count(), b.lfb_occupancy.count());
        assert_eq!(a.lfb_occupancy.quantile(0.5), b.lfb_occupancy.quantile(0.5));
        assert_eq!(a.lfb_occupancy.max(), b.lfb_occupancy.max());
    }
}
