//! Per-core cycle accounting: classify every picosecond of simulated core
//! time into one of six classes.
//!
//! The raw material is the `Category::Cpu` span events the instrumented
//! layers emit when profiling is on (`Tracer::set_profile`): `cpu.ctx`
//! (context-switch overhead), `cpu.poll` (SWQ completion polling),
//! `cpu.work`/`cpu.soft` (retired compute), `cpu.lfbwait` (a memory op
//! stalled because all line-fill buffers were in use) and `cpu.park` (the
//! executor idled the core waiting for an outstanding access). Those spans
//! overlap freely — a parked core can still have a `Work` op draining in
//! the ROB — so the classifier sweeps the elementary intervals between all
//! span boundaries and assigns each interval to the highest-priority class
//! covering it ("exposed time" semantics, see DESIGN.md §8e). Time covered
//! by no span is `idle`. Because every elementary interval lands in exactly
//! one class, the per-core totals sum to the measured window *exactly* — an
//! invariant `ProfileReport::build` asserts.

use kus_sim::time::{Span, Time};
use kus_sim::trace::{Category, Phase, TraceEvent};

/// The six accounting classes, in **priority order**: when span classes
/// overlap, the earlier class claims the interval.
pub const CLASS_NAMES: [&str; 6] =
    ["ctx_switch", "swq_poll", "compute", "stall_lfb_full", "blocked_load", "idle"];

pub(crate) const CLASS_CTX: usize = 0;
pub(crate) const CLASS_POLL: usize = 1;
pub(crate) const CLASS_COMPUTE: usize = 2;
pub(crate) const CLASS_LFB: usize = 3;
pub(crate) const CLASS_BLOCKED: usize = 4;
pub(crate) const CLASS_IDLE: usize = 5;

/// Where one core's window went, one field per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreAccount {
    /// Paying the fiber switch cost (`cpu.ctx`).
    pub ctx_switch: Span,
    /// Scanning the SWQ completion ring (`cpu.poll`).
    pub swq_poll: Span,
    /// Retiring instructions, host-side software work, MMIO (`cpu.work`, `cpu.soft`).
    pub compute: Span,
    /// A memory op held back because every line-fill buffer was busy (`cpu.lfbwait`).
    pub stall_lfb_full: Span,
    /// The executor parked the core on an outstanding access (`cpu.park`).
    pub blocked_load: Span,
    /// Covered by no span at all: no runnable fiber, nothing in flight.
    pub idle: Span,
}

impl CoreAccount {
    /// The classes in priority order, paired with their names.
    pub fn classes(&self) -> [(&'static str, Span); 6] {
        [
            (CLASS_NAMES[0], self.ctx_switch),
            (CLASS_NAMES[1], self.swq_poll),
            (CLASS_NAMES[2], self.compute),
            (CLASS_NAMES[3], self.stall_lfb_full),
            (CLASS_NAMES[4], self.blocked_load),
            (CLASS_NAMES[5], self.idle),
        ]
    }

    /// Total classified time; must equal the measured window exactly.
    pub fn classified(&self) -> Span {
        self.classes().iter().fold(Span::ZERO, |a, &(_, s)| a + s)
    }

    fn add(&mut self, class: usize, dur: Span) {
        match class {
            CLASS_CTX => self.ctx_switch += dur,
            CLASS_POLL => self.swq_poll += dur,
            CLASS_COMPUTE => self.compute += dur,
            CLASS_LFB => self.stall_lfb_full += dur,
            CLASS_BLOCKED => self.blocked_load += dur,
            _ => self.idle += dur,
        }
    }

    pub(crate) fn accumulate(&mut self, other: &CoreAccount) {
        self.ctx_switch += other.ctx_switch;
        self.swq_poll += other.swq_poll;
        self.compute += other.compute;
        self.stall_lfb_full += other.stall_lfb_full;
        self.blocked_load += other.blocked_load;
        self.idle += other.idle;
    }
}

/// One core's classified timeline: the account plus the non-overlapping,
/// window-covering class segments the flamegraph exporter renders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreTimeline {
    /// Core id (== trace track).
    pub track: u32,
    pub account: CoreAccount,
    /// `(start_ps, end_ps, class index into CLASS_NAMES)`; adjacent
    /// same-class segments are pre-merged.
    pub segments: Vec<(u64, u64, usize)>,
}

/// Classifies `events` into one timeline per core over `[window.0, window.1)`.
/// Spans are clamped to the window; events on tracks `>= cores` are ignored.
pub(crate) fn classify(events: &[TraceEvent], cores: usize, window: (Time, Time)) -> Vec<CoreTimeline> {
    let w0 = window.0.as_ps();
    let w1 = window.1.as_ps().max(w0);
    let mut spans: Vec<[Vec<(u64, u64)>; 5]> = (0..cores).map(|_| Default::default()).collect();
    for e in events {
        if e.cat != Category::Cpu || !matches!(e.phase, Phase::Complete) {
            continue;
        }
        let class = match e.name {
            "cpu.ctx" => CLASS_CTX,
            "cpu.poll" => CLASS_POLL,
            "cpu.work" | "cpu.soft" => CLASS_COMPUTE,
            "cpu.lfbwait" => CLASS_LFB,
            "cpu.park" => CLASS_BLOCKED,
            _ => continue,
        };
        let Some(by_class) = spans.get_mut(e.track as usize) else { continue };
        let s = e.at.as_ps().clamp(w0, w1);
        let n = (e.at.as_ps() + e.a1).clamp(w0, w1);
        if n > s {
            by_class[class].push((s, n));
        }
    }
    spans
        .into_iter()
        .enumerate()
        .map(|(track, mut by_class)| {
            for c in by_class.iter_mut() {
                *c = union(std::mem::take(c));
            }
            // Elementary-interval sweep: between consecutive boundaries no
            // span starts or ends, so coverage is constant and the interval
            // belongs wholly to its highest-priority covering class.
            let mut bounds: Vec<u64> = vec![w0, w1];
            for c in &by_class {
                for &(s, n) in c {
                    bounds.push(s);
                    bounds.push(n);
                }
            }
            bounds.sort_unstable();
            bounds.dedup();
            let mut account = CoreAccount::default();
            let mut segments: Vec<(u64, u64, usize)> = Vec::new();
            for w in bounds.windows(2) {
                let (a, b) = (w[0], w[1]);
                let class = (0..5).find(|&c| covers(&by_class[c], a)).unwrap_or(CLASS_IDLE);
                account.add(class, Span::from_ps(b - a));
                match segments.last_mut() {
                    Some(last) if last.2 == class && last.1 == a => last.1 = b,
                    _ => segments.push((a, b, class)),
                }
            }
            CoreTimeline { track: track as u32, account, segments }
        })
        .collect()
}

/// Sorts and merges overlapping/adjacent intervals into a disjoint set.
fn union(mut intervals: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    intervals.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
    for (s, n) in intervals {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(n),
            _ => merged.push((s, n)),
        }
    }
    merged
}

/// Whether the disjoint sorted set covers the point `at`.
fn covers(merged: &[(u64, u64)], at: u64) -> bool {
    match merged.partition_point(|&(s, _)| s <= at) {
        0 => false,
        i => merged[i - 1].1 > at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_ev(name: &'static str, track: u32, start_ps: u64, dur_ps: u64) -> TraceEvent {
        TraceEvent {
            at: Time::from_ps(start_ps),
            cat: Category::Cpu,
            name,
            phase: Phase::Complete,
            track,
            a0: 0,
            a1: dur_ps,
        }
    }

    fn window(end_ps: u64) -> (Time, Time) {
        (Time::ZERO, Time::from_ps(end_ps))
    }

    #[test]
    fn empty_stream_is_all_idle() {
        let tl = classify(&[], 2, window(1000));
        assert_eq!(tl.len(), 2);
        for t in &tl {
            assert_eq!(t.account.idle, Span::from_ps(1000));
            assert_eq!(t.account.classified(), Span::from_ps(1000));
            assert_eq!(t.segments, vec![(0, 1000, CLASS_IDLE)]);
        }
    }

    #[test]
    fn priority_resolves_overlap() {
        // A park [0,1000) overlapped by a work span [200,500): compute wins
        // the overlap, the park keeps the exposed remainder.
        let evs = vec![span_ev("cpu.park", 0, 0, 1000), span_ev("cpu.work", 0, 200, 300)];
        let tl = classify(&evs, 1, window(1000));
        let a = tl[0].account;
        assert_eq!(a.compute, Span::from_ps(300));
        assert_eq!(a.blocked_load, Span::from_ps(700));
        assert_eq!(a.idle, Span::ZERO);
        assert_eq!(a.classified(), Span::from_ps(1000));
        assert_eq!(
            tl[0].segments,
            vec![
                (0, 200, CLASS_BLOCKED),
                (200, 500, CLASS_COMPUTE),
                (500, 1000, CLASS_BLOCKED)
            ]
        );
    }

    #[test]
    fn spans_clamp_to_window_and_sum_exactly() {
        // Span starts before the window and ends after it; overlapping work
        // spans within one class union rather than double-count.
        let evs = vec![
            span_ev("cpu.work", 0, 0, 400),
            span_ev("cpu.work", 0, 300, 500),
            span_ev("cpu.ctx", 0, 700, 600),
        ];
        let w = (Time::from_ps(100), Time::from_ps(900));
        let tl = classify(&evs, 1, w);
        let a = tl[0].account;
        // Work union is [100,800) clamped, but the clamped ctx span [700,900)
        // outranks it, so compute keeps only the exposed [100,700).
        assert_eq!(a.compute, Span::from_ps(600));
        assert_eq!(a.ctx_switch, Span::from_ps(200));
        assert_eq!(a.idle, Span::ZERO);
        assert_eq!(a.classified(), Span::from_ps(800));
    }

    #[test]
    fn tracks_outside_core_range_are_ignored() {
        let evs = vec![span_ev("cpu.work", 7, 0, 100)];
        let tl = classify(&evs, 1, window(100));
        assert_eq!(tl[0].account.compute, Span::ZERO);
        assert_eq!(tl[0].account.idle, Span::from_ps(100));
    }

    #[test]
    fn segments_tile_the_window() {
        let evs = vec![
            span_ev("cpu.poll", 1, 100, 50),
            span_ev("cpu.soft", 1, 150, 100),
            span_ev("cpu.lfbwait", 1, 400, 100),
        ];
        let tl = classify(&evs, 2, window(600));
        let segs = &tl[1].segments;
        assert_eq!(segs.first().unwrap().0, 0);
        assert_eq!(segs.last().unwrap().1, 600);
        for pair in segs.windows(2) {
            assert_eq!(pair[0].1, pair[1].0, "segments must tile without gaps");
            assert_ne!(pair[0].2, pair[1].2, "adjacent same-class segments must merge");
        }
        let total: u64 = segs.iter().map(|&(s, n, _)| n - s).sum();
        assert_eq!(total, 600);
    }
}
