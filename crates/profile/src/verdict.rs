//! Bottleneck verdicts: a fixed rule set over the cycle accounts, pressure
//! counters and blame tables that emits machine-readable findings mirroring
//! §4 of the paper — which resource is saturated, and which knob to widen.
//!
//! Rules are evaluated in a fixed order and several can fire at once (a
//! saturated ring usually also shows up as queueing-dominated blame).
//! Thresholds are deliberately coarse: verdicts answer "what should I widen
//! next", not "what is the exact utilization".

use std::fmt;

use kus_sim::time::Span;

use crate::account::CoreAccount;
use crate::blame::BlameTable;
use crate::pressure::PressureReport;
use crate::ProfileContext;

/// Context-switch share of wall time above which switching is the problem
/// the paper's software queue removes.
const CTX_BOUND: f64 = 0.15;
/// Blocked-on-device share above which the core is starved for MLP.
const BLOCKED_BOUND: f64 = 0.35;
/// Completion-poll share above which poll batching should be revisited.
const POLL_BOUND: f64 = 0.20;
/// Compute share above which the run is healthily core-bound.
const COMPUTE_BOUND: f64 = 0.60;
/// Idle share above which the platform is simply under-offered.
const IDLE_BOUND: f64 = 0.50;
/// Share of blamed time in the queueing segments (doorbell_wait +
/// ring_wait) above which the SWQ path itself is the bottleneck.
const QUEUEING_BOUND: f64 = 0.40;

/// One machine-readable finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Stable rule identifier, e.g. `lfb_saturated`.
    pub name: &'static str,
    /// Evidence, in fixed key order.
    pub details: Vec<(&'static str, String)>,
    /// The knob to widen next, e.g. `mlp_limit`.
    pub suggest: &'static str,
}

impl fmt::Display for Verdict {
    /// Renders as `lfb_saturated { occupancy_p99: 10/10, suggest: mlp_limit }`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {{ ", self.name)?;
        for (k, v) in &self.details {
            write!(f, "{k}: {v}, ")?;
        }
        write!(f, "suggest: {} }}", self.suggest)
    }
}

fn pct(share: f64) -> String {
    format!("{:.1}%", share * 100.0)
}

pub(crate) fn diagnose(
    ctx: &ProfileContext,
    totals: &CoreAccount,
    wall: Span,
    pressure: &PressureReport,
    blame: &BlameTable,
) -> Vec<Verdict> {
    let mut out = Vec::new();
    let wall_ps = wall.as_ps();
    let share = |s: Span| if wall_ps == 0 { 0.0 } else { s.as_ps() as f64 / wall_ps as f64 };

    // 1. LFB saturation: the per-core MLP window (10 on the paper's Xeon)
    //    pinned at capacity while allocations bounce.
    let lfb_p99 = pressure.lfb_occupancy.quantile(0.99).as_ps();
    if pressure.lfb_occupancy.count() > 0 && lfb_p99 >= ctx.lfb_capacity && pressure.lfb_full_events > 0 {
        out.push(Verdict {
            name: "lfb_saturated",
            details: vec![
                ("occupancy_p99", format!("{lfb_p99}/{}", ctx.lfb_capacity)),
                ("lfb_full", pressure.lfb_full_events.to_string()),
            ],
            suggest: "mlp_limit",
        });
    }

    // 2. SWQ descriptor ring pinned at capacity at enqueue time.
    let ring_p99 = pressure.ring_at_enqueue.quantile(0.99).as_ps();
    if pressure.ring_at_enqueue.count() > 0 && ctx.ring_capacity > 0 && ring_p99 >= ctx.ring_capacity {
        out.push(Verdict {
            name: "ring_saturated",
            details: vec![("occupancy_p99", format!("{ring_p99}/{}", ctx.ring_capacity))],
            suggest: "ring_capacity",
        });
    }

    // 3. Queueing-dominated blame: sojourns spent waiting to be fetched,
    //    not being served.
    let queueing = blame.share("doorbell_wait") + blame.share("ring_wait");
    if blame.requests > 0 && queueing >= QUEUEING_BOUND {
        out.push(Verdict {
            name: "queueing_bound",
            details: vec![
                ("blame_share", pct(queueing)),
                ("requests", blame.requests.to_string()),
            ],
            suggest: "fetch_burst",
        });
    }

    // 4. Context-switch overhead — the cost the paper's SWQ removes.
    if share(totals.ctx_switch) >= CTX_BOUND {
        out.push(Verdict {
            name: "context_switch_bound",
            details: vec![
                ("ctx_share", pct(share(totals.ctx_switch))),
                ("switch_cost_ps", ctx.ctx_switch.as_ps().to_string()),
            ],
            suggest: "software_queue",
        });
    }

    // 5. Cores starved on outstanding device accesses.
    if share(totals.blocked_load) >= BLOCKED_BOUND {
        out.push(Verdict {
            name: "device_wait_bound",
            details: vec![("blocked_share", pct(share(totals.blocked_load)))],
            suggest: "increase_mlp",
        });
    }

    // 6. Completion polling eating the cores.
    if share(totals.swq_poll) >= POLL_BOUND {
        out.push(Verdict {
            name: "swq_poll_bound",
            details: vec![("poll_share", pct(share(totals.swq_poll)))],
            suggest: "completion_batching",
        });
    }

    // 7./8. Healthy saturation vs. under-offered.
    if share(totals.compute) >= COMPUTE_BOUND {
        out.push(Verdict {
            name: "compute_bound",
            details: vec![("compute_share", pct(share(totals.compute)))],
            suggest: "scale_cores",
        });
    }
    if share(totals.idle) >= IDLE_BOUND {
        out.push(Verdict {
            name: "underutilized",
            details: vec![("idle_share", pct(share(totals.idle)))],
            suggest: "increase_load",
        });
    }

    // 9. Fallback: nothing crossed a threshold, so no single resource is
    //    saturated. Still name the dominant time class so every profile
    //    carries at least one finding for dashboards and CI diffs.
    if out.is_empty() {
        let classes = [
            ("compute", totals.compute),
            ("ctx_switch", totals.ctx_switch),
            ("swq_poll", totals.swq_poll),
            ("stall_lfb_full", totals.stall_lfb_full),
            ("blocked_load", totals.blocked_load),
            ("idle", totals.idle),
        ];
        let (top, span) = classes
            .iter()
            .max_by_key(|(_, s)| s.as_ps())
            .copied()
            .unwrap_or(("idle", Span::ZERO));
        out.push(Verdict {
            name: "balanced",
            details: vec![("top_class", top.to_string()), ("top_share", pct(share(span)))],
            suggest: "none",
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kus_sim::time::Time;

    fn ctx() -> ProfileContext {
        ProfileContext {
            cores: 1,
            fibers_per_core: 4,
            mechanism: "swq".to_string(),
            lfb_capacity: 10,
            ring_capacity: 8,
            device_path_credits: 14,
            ctx_switch: Span::from_us(2),
            window_start: Time::ZERO,
            window_end: Time::from_ps(1_000_000),
            sched_stall_handoffs: 0,
        }
    }

    #[test]
    fn lfb_saturation_fires_and_renders() {
        let mut pressure = PressureReport::default();
        for _ in 0..200 {
            pressure.lfb_occupancy.record(Span::from_ps(10));
        }
        pressure.lfb_full_events = 42;
        let verdicts = diagnose(
            &ctx(),
            &CoreAccount::default(),
            Span::from_ps(1_000_000),
            &pressure,
            &BlameTable::default(),
        );
        let v = verdicts.iter().find(|v| v.name == "lfb_saturated").expect("must fire");
        assert_eq!(v.suggest, "mlp_limit");
        assert_eq!(v.to_string(), "lfb_saturated { occupancy_p99: 10/10, lfb_full: 42, suggest: mlp_limit }");
    }

    #[test]
    fn ctx_switch_share_fires() {
        let totals = CoreAccount { ctx_switch: Span::from_ps(200_000), ..Default::default() };
        let verdicts =
            diagnose(&ctx(), &totals, Span::from_ps(1_000_000), &PressureReport::default(), &BlameTable::default());
        assert!(verdicts.iter().any(|v| v.name == "context_switch_bound" && v.suggest == "software_queue"));
    }

    #[test]
    fn balanced_run_falls_back_to_dominant_class() {
        // Nothing crosses a threshold: compute 40%, idle 30%, the rest split.
        let totals = CoreAccount {
            compute: Span::from_ps(400_000),
            idle: Span::from_ps(300_000),
            ctx_switch: Span::from_ps(120_000),
            swq_poll: Span::from_ps(180_000),
            ..Default::default()
        };
        let verdicts =
            diagnose(&ctx(), &totals, Span::from_ps(1_000_000), &PressureReport::default(), &BlameTable::default());
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].name, "balanced");
        assert_eq!(
            verdicts[0].to_string(),
            "balanced { top_class: compute, top_share: 40.0%, suggest: none }"
        );
    }

    #[test]
    fn quiet_run_yields_underutilized_only() {
        let totals = CoreAccount { idle: Span::from_ps(900_000), compute: Span::from_ps(100_000), ..Default::default() };
        let verdicts =
            diagnose(&ctx(), &totals, Span::from_ps(1_000_000), &PressureReport::default(), &BlameTable::default());
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].name, "underutilized");
    }
}
