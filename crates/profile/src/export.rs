//! Exporters: a deterministic speedscope-format flamegraph and a rendered
//! text dashboard.
//!
//! The speedscope file is an `evented` profile per core over the shared
//! class frames; values are picoseconds (`unit: "none"`). Everything is
//! written with `write!` over integers and fixed-precision floats, so the
//! bytes are a pure function of the report.

use std::fmt::Write as _;

use crate::account::CLASS_NAMES;
use crate::{json_escape, ProfileReport};

/// Renders the report as a speedscope JSON document
/// (<https://www.speedscope.app/file-format-schema.json>): one evented
/// profile per core, one frame per accounting class, idle included so every
/// profile covers the whole measured window.
pub(crate) fn speedscope(report: &ProfileReport, name: &str) -> String {
    let mut out = String::new();
    out.push_str("{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\"");
    let _ = write!(out, ",\"name\":\"{}\"", json_escape(name));
    out.push_str(",\"exporter\":\"kus-profile\",\"activeProfileIndex\":0");
    out.push_str(",\"shared\":{\"frames\":[");
    for (i, class) in CLASS_NAMES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"name\":\"{class}\"}}");
    }
    out.push_str("]},\"profiles\":[");
    let w0 = report.ctx.window_start.as_ps();
    let w1 = report.ctx.window_end.as_ps();
    for (i, tl) in report.timelines.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"type\":\"evented\",\"name\":\"core {}\",\"unit\":\"none\",\"startValue\":{w0},\"endValue\":{w1},\"events\":[",
            tl.track
        );
        for (j, &(s, n, class)) in tl.segments.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"type\":\"O\",\"frame\":{class},\"at\":{s}}},{{\"type\":\"C\",\"frame\":{class},\"at\":{n}}}"
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

fn fmt_us(ps: u64) -> String {
    format!("{:.3} us", ps as f64 / 1e6)
}

fn bar(share: f64, width: usize) -> String {
    let filled = (share * width as f64).round() as usize;
    let filled = filled.min(width);
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

/// Renders the report as a human-readable text dashboard.
pub(crate) fn dashboard(report: &ProfileReport, name: &str) -> String {
    let ctx = &report.ctx;
    let window = (ctx.window_end - ctx.window_start).as_ps();
    let wall = window * ctx.cores as u64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile: {name} (mechanism {}, {} cores x {} fibers, window {})",
        ctx.mechanism,
        ctx.cores,
        ctx.fibers_per_core,
        fmt_us(window)
    );

    out.push_str("  cycle accounting (all cores):\n");
    for (class, span) in report.totals.classes() {
        let share = if wall == 0 { 0.0 } else { span.as_ps() as f64 / wall as f64 };
        let _ = writeln!(
            out,
            "    {class:<16} {:>14}  {:>6.1}%  {}",
            fmt_us(span.as_ps()),
            share * 100.0,
            bar(share, 30)
        );
    }

    let p = &report.pressure;
    out.push_str("  pressure:\n");
    let _ = writeln!(
        out,
        "    lfb occupancy p50/p99/max {}/{}/{} of {} ({} full rejections, {} waits)",
        p.lfb_occupancy.quantile(0.5).as_ps(),
        p.lfb_occupancy.quantile(0.99).as_ps(),
        p.lfb_occupancy.max().as_ps(),
        ctx.lfb_capacity,
        p.lfb_full_events,
        p.lfb_waits
    );
    if p.chip_queue_at_acquire.count() > 0 {
        let _ = writeln!(
            out,
            "    chip queue at acquire p99/max {}/{} of {}",
            p.chip_queue_at_acquire.quantile(0.99).as_ps(),
            p.chip_queue_at_acquire.max().as_ps(),
            ctx.device_path_credits
        );
    }
    if p.enqueues > 0 {
        let _ = writeln!(
            out,
            "    ring at enqueue p99/max {}/{} of {}; doorbell batching {:.2}; burst efficiency {:.2}",
            p.ring_at_enqueue.quantile(0.99).as_ps(),
            p.ring_at_enqueue.max().as_ps(),
            ctx.ring_capacity,
            p.doorbell_batching(),
            p.burst_efficiency()
        );
    }
    if ctx.sched_stall_handoffs > 0 {
        let _ = writeln!(out, "    scheduler stall handoffs {}", ctx.sched_stall_handoffs);
    }

    if report.blame.requests > 0 {
        let _ = writeln!(out, "  blame (all {} requests / p99 tail {}):", report.blame.requests, report.blame_p99.requests);
        for (all, tail) in report.blame.rows.iter().zip(&report.blame_p99.rows) {
            if all.count == 0 && tail.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "    {:<16} {:>5} reqs {:>14}  | tail {:>4} reqs {:>14}",
                all.segment,
                all.count,
                fmt_us(all.blamed.as_ps()),
                tail.count,
                fmt_us(tail.blamed.as_ps())
            );
        }
    }

    out.push_str("  verdicts:\n");
    if report.verdicts.is_empty() {
        out.push_str("    (none)\n");
    }
    for v in &report.verdicts {
        let _ = writeln!(out, "    - {v}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProfileContext;
    use kus_sim::time::{Span, Time};
    use kus_sim::trace::{Category, Phase, TraceEvent};

    fn sample_report() -> ProfileReport {
        let evs = vec![
            TraceEvent {
                at: Time::from_ps(100),
                cat: Category::Cpu,
                name: "cpu.work",
                phase: Phase::Complete,
                track: 0,
                a0: 0,
                a1: 400,
            },
            TraceEvent {
                at: Time::from_ps(600),
                cat: Category::Cpu,
                name: "cpu.park",
                phase: Phase::Complete,
                track: 0,
                a0: 0,
                a1: 300,
            },
        ];
        let ctx = ProfileContext {
            cores: 1,
            fibers_per_core: 2,
            mechanism: "ondemand".to_string(),
            lfb_capacity: 10,
            ring_capacity: 64,
            device_path_credits: 14,
            ctx_switch: Span::from_us(2),
            window_start: Time::ZERO,
            window_end: Time::from_ps(1000),
            sched_stall_handoffs: 0,
        };
        ProfileReport::build(&evs, ctx)
    }

    #[test]
    fn speedscope_has_schema_frames_and_profiles() {
        let ss = sample_report().to_speedscope("sample");
        assert!(ss.contains("\"$schema\":\"https://www.speedscope.app/file-format-schema.json\""));
        assert!(ss.contains("\"shared\":{\"frames\":["));
        assert!(ss.contains("\"profiles\":["));
        assert!(ss.contains("\"name\":\"compute\""));
        assert!(ss.contains("{\"type\":\"O\",\"frame\":2,\"at\":100}"));
        assert!(ss.contains("{\"type\":\"C\",\"frame\":2,\"at\":500}"));
        assert_eq!(ss.matches("\"type\":\"O\"").count(), ss.matches("\"type\":\"C\"").count());
        let opens = ss.matches('{').count();
        assert_eq!(opens, ss.matches('}').count());
    }

    #[test]
    fn dashboard_renders_accounts_and_verdicts() {
        let d = sample_report().dashboard("sample");
        assert!(d.starts_with("profile: sample (mechanism ondemand, 1 cores x 2 fibers"));
        assert!(d.contains("compute"));
        assert!(d.contains("blocked_load"));
        assert!(d.contains("verdicts:"));
    }
}
