//! `kus-profile`: a cycle-accounting profiler for the killer-microsecond
//! platform.
//!
//! The paper's core contribution is a *diagnosis*: throughput is lost to
//! identifiable resources — 10 line-fill buffers per core, the 14-entry
//! chip-level queue on the PCIe path, 2 µs context switches — and widening
//! the right one recovers it. This crate turns a run's trace stream into
//! that diagnosis:
//!
//! 1. **Per-core cycle accounting** ([`account`]): every picosecond of
//!    simulated core time classified into compute / stall-LFB-full /
//!    blocked-load wait / context-switch overhead / SWQ poll / idle, with
//!    totals that sum to wall time *exactly* (a checked invariant).
//! 2. **Resource-pressure counters** ([`pressure`]): LFB occupancy, ring
//!    occupancy-at-enqueue, chip-queue credits, doorbell batching, fetch
//!    burst efficiency — mergeable HDR shards, `--jobs`-stable.
//! 3. **Critical-path blame** ([`blame`]): each request's sojourn
//!    attributed to its single longest chain segment, aggregated overall
//!    and over the p99 tail.
//! 4. **Bottleneck verdicts** ([`verdict`]): machine-readable findings
//!    like `lfb_saturated { occupancy_p99: 10/10, suggest: mlp_limit }`.
//! 5. **Exporters** ([`export`]): speedscope flamegraph JSON and a text
//!    dashboard, both byte-deterministic.
//!
//! The input is the ordinary trace stream plus the `Category::Cpu`
//! accounting spans the platform layers emit when profiling is enabled
//! (`PlatformConfig::profiled()` → `Tracer::set_profile`). Profiling is
//! observability only: the hooks fire from existing callbacks and never
//! schedule events or draw randomness, so a profiled run's outcome is
//! identical to an unprofiled one.

pub mod account;
pub mod blame;
pub mod export;
pub mod pressure;
pub mod verdict;

use std::fmt::Write as _;

use kus_sim::stats::HdrHistogram;
use kus_sim::time::{Span, Time};
use kus_sim::trace::TraceEvent;

pub use account::{CoreAccount, CoreTimeline, CLASS_NAMES};
pub use blame::{BlameRow, BlameTable, SEGMENTS};
pub use pressure::{PressureReport, TRACK_DEVICE_CREDITS, TRACK_DEVICE_STATION, TRACK_DRAM_CREDITS};
pub use verdict::Verdict;

/// Everything the profiler needs to know about the run that produced the
/// events: platform shape (for saturation thresholds) and the measured
/// window. Filled in by `Platform` at harvest time.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileContext {
    /// Executor/core count (trace tracks `0..cores` carry Cpu spans).
    pub cores: usize,
    pub fibers_per_core: usize,
    /// Access-mechanism label (`ondemand` / `prefetch` / `swq`).
    pub mechanism: String,
    /// Line-fill buffers per core.
    pub lfb_capacity: u64,
    /// SWQ descriptor-ring capacity (0 outside SWQ runs).
    pub ring_capacity: u64,
    /// Chip-level device-path credit count.
    pub device_path_credits: u64,
    /// Configured fiber context-switch cost.
    pub ctx_switch: Span,
    /// Start of the measured window (after device pre-streaming).
    pub window_start: Time,
    /// End of the measured window.
    pub window_end: Time,
    /// Times the round-robin scheduler handed the core to a not-yet-ready
    /// fiber (a stall handoff), summed over cores.
    pub sched_stall_handoffs: u64,
}

/// The profiler's output: accounts, pressure, blame and verdicts for one
/// run. Built once at harvest; all exports are pure functions of it.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    pub ctx: ProfileContext,
    /// One classified timeline per core, track order.
    pub timelines: Vec<CoreTimeline>,
    /// Sum of all per-core accounts.
    pub totals: CoreAccount,
    pub pressure: PressureReport,
    /// Blame over all completed SWQ requests (empty outside SWQ runs).
    pub blame: BlameTable,
    /// Blame restricted to the p99 sojourn tail.
    pub blame_p99: BlameTable,
    pub verdicts: Vec<Verdict>,
}

impl ProfileReport {
    /// Builds the report from a run's event stream.
    ///
    /// # Panics
    ///
    /// Panics if any core's classified time does not sum exactly to the
    /// measured window — that would mean the accounting lost or
    /// double-counted time, which is a bug, never a data artifact.
    pub fn build(events: &[TraceEvent], ctx: ProfileContext) -> ProfileReport {
        let timelines = account::classify(events, ctx.cores, (ctx.window_start, ctx.window_end));
        let window = ctx.window_end - ctx.window_start;
        let mut totals = CoreAccount::default();
        for tl in &timelines {
            assert_eq!(
                tl.account.classified(),
                window,
                "cycle accounting must sum to wall time exactly (core {})",
                tl.track
            );
            totals.accumulate(&tl.account);
        }
        let pressure = pressure::build(events);
        let (blame, blame_p99) = blame::extract(events);
        let wall = Span::from_ps(window.as_ps() * ctx.cores as u64);
        let verdicts = verdict::diagnose(&ctx, &totals, wall, &pressure, &blame);
        ProfileReport { ctx, timelines, totals, pressure, blame, blame_p99, verdicts }
    }

    /// The measured window all per-core accounts sum to.
    pub fn window(&self) -> Span {
        self.ctx.window_end - self.ctx.window_start
    }

    /// Deterministic JSON rendering — integer picoseconds and fixed-width
    /// floats only, byte-identical for identical runs.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let ctx = &self.ctx;
        let _ = write!(
            out,
            "{{\"mechanism\":\"{}\",\"cores\":{},\"fibers_per_core\":{},\"window_start_ps\":{},\"window_end_ps\":{},\"window_ps\":{}",
            json_escape(&ctx.mechanism),
            ctx.cores,
            ctx.fibers_per_core,
            ctx.window_start.as_ps(),
            ctx.window_end.as_ps(),
            self.window().as_ps()
        );
        out.push_str(",\"accounts\":[");
        for (i, tl) in self.timelines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"core\":{}", tl.track);
            write_account(&mut out, &tl.account);
            out.push('}');
        }
        out.push_str("],\"totals\":{\"cores\":");
        let _ = write!(out, "{}", ctx.cores);
        write_account(&mut out, &self.totals);
        out.push('}');

        let p = &self.pressure;
        out.push_str(",\"pressure\":{");
        write_hist(&mut out, "lfb_occupancy", &p.lfb_occupancy);
        let _ = write!(out, ",\"lfb_full_events\":{},\"lfb_waits\":{},", p.lfb_full_events, p.lfb_waits);
        write_hist(&mut out, "chip_queue_at_acquire", &p.chip_queue_at_acquire);
        out.push(',');
        write_hist(&mut out, "ring_at_enqueue", &p.ring_at_enqueue);
        out.push(',');
        write_hist(&mut out, "station_occupancy", &p.station_occupancy);
        out.push(',');
        write_hist(&mut out, "link_queue_delay", &p.link_queue_delay);
        let _ = write!(
            out,
            ",\"enqueues\":{},\"doorbells\":{},\"doorbell_batching\":{:.6},\"fetched\":{},\"fetch_bursts\":{},\"burst_efficiency\":{:.6},\"sched_stall_handoffs\":{}}}",
            p.enqueues,
            p.doorbells,
            p.doorbell_batching(),
            p.fetched,
            p.fetch_bursts,
            p.burst_efficiency(),
            ctx.sched_stall_handoffs
        );

        write_blame(&mut out, "blame", &self.blame);
        write_blame(&mut out, "blame_p99", &self.blame_p99);

        out.push_str(",\"verdicts\":[");
        for (i, v) in self.verdicts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"suggest\":\"{}\",\"details\":{{", v.name, v.suggest);
            for (j, (k, val)) in v.details.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":\"{}\"", json_escape(val));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Speedscope flamegraph JSON (see [`export`]).
    pub fn to_speedscope(&self, name: &str) -> String {
        export::speedscope(self, name)
    }

    /// Human-readable text dashboard (see [`export`]).
    pub fn dashboard(&self, name: &str) -> String {
        export::dashboard(self, name)
    }
}

fn write_account(out: &mut String, a: &CoreAccount) {
    for (class, span) in a.classes() {
        let _ = write!(out, ",\"{class}_ps\":{}", span.as_ps());
    }
    let _ = write!(out, ",\"wall_ps\":{}", a.classified().as_ps());
}

fn write_hist(out: &mut String, key: &str, h: &HdrHistogram) {
    let _ = write!(
        out,
        "\"{key}\":{{\"count\":{},\"mean_ps\":{},\"p50_ps\":{},\"p99_ps\":{},\"max_ps\":{}}}",
        h.count(),
        h.mean().as_ps(),
        h.quantile(0.5).as_ps(),
        h.quantile(0.99).as_ps(),
        h.max().as_ps()
    );
}

fn write_blame(out: &mut String, key: &str, t: &BlameTable) {
    let _ = write!(out, ",\"{key}\":{{\"requests\":{},\"rows\":[", t.requests);
    for (i, r) in t.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"segment\":\"{}\",\"count\":{},\"blamed_ps\":{},\"sojourn_ps\":{}}}",
            r.segment,
            r.count,
            r.blamed.as_ps(),
            r.sojourn.as_ps()
        );
    }
    out.push_str("]}");
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kus_sim::trace::{Category, Phase};

    fn cpu(name: &'static str, track: u32, start: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            at: Time::from_ps(start),
            cat: Category::Cpu,
            name,
            phase: Phase::Complete,
            track,
            a0: 0,
            a1: dur,
        }
    }

    fn ctx(cores: usize, end_ps: u64) -> ProfileContext {
        ProfileContext {
            cores,
            fibers_per_core: 4,
            mechanism: "swq".to_string(),
            lfb_capacity: 10,
            ring_capacity: 64,
            device_path_credits: 14,
            ctx_switch: Span::from_us(2),
            window_start: Time::ZERO,
            window_end: Time::from_ps(end_ps),
            sched_stall_handoffs: 3,
        }
    }

    #[test]
    fn build_sums_to_wall_time_per_core() {
        let evs = vec![
            cpu("cpu.work", 0, 0, 300),
            cpu("cpu.ctx", 0, 250, 200),
            cpu("cpu.park", 1, 100, 900),
        ];
        let r = ProfileReport::build(&evs, ctx(2, 1000));
        for tl in &r.timelines {
            assert_eq!(tl.account.classified(), Span::from_ps(1000));
        }
        assert_eq!(r.totals.classified(), Span::from_ps(2000));
        // Priority: the ctx span claims its overlap with the work span.
        assert_eq!(r.timelines[0].account.ctx_switch, Span::from_ps(200));
        assert_eq!(r.timelines[0].account.compute, Span::from_ps(250));
    }

    #[test]
    fn json_is_deterministic_and_balanced() {
        let evs = vec![cpu("cpu.work", 0, 0, 500)];
        let a = ProfileReport::build(&evs, ctx(1, 1000)).to_json();
        let b = ProfileReport::build(&evs, ctx(1, 1000)).to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"mechanism\":\"swq\",\"cores\":1,"));
        assert!(a.contains("\"accounts\":[{\"core\":0,"));
        assert!(a.contains("\"compute_ps\":500"));
        assert!(a.contains("\"wall_ps\":1000"));
        assert!(a.contains("\"verdicts\":["));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn empty_run_is_all_idle_and_verdicted_underutilized() {
        let r = ProfileReport::build(&[], ctx(2, 10_000));
        assert_eq!(r.totals.idle, Span::from_ps(20_000));
        assert!(r.verdicts.iter().any(|v| v.name == "underutilized"));
        assert_eq!(r.blame.requests, 0);
    }
}
