//! Per-tag critical-path extraction: walk each SWQ request's
//! issue→enqueue→doorbell→fetch→serve→complete→deliver span chain and
//! attribute its whole sojourn to the single longest segment.
//!
//! The six segments telescope exactly back to the sojourn (`deliver -
//! issue`), so blame is a partition of end-to-end latency, not a sample.
//! Two tables come out: one over all completed requests, and one
//! restricted to the p99 tail, so tail causes are separated from mean
//! causes (a ring that is fine on average can still own the tail).

use std::collections::BTreeMap;

use kus_sim::time::Span;
use kus_sim::trace::{Category, TraceEvent};

/// The blameable segments, in chain order. Ties go to the earlier segment.
pub const SEGMENTS: [&str; 6] =
    ["host_enqueue", "doorbell_wait", "ring_wait", "device_service", "completion_dma", "delivery"];

/// Aggregate blame for one segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlameRow {
    pub segment: &'static str,
    /// Requests whose longest segment this was.
    pub count: u64,
    /// Summed duration of the blamed segment across those requests.
    pub blamed: Span,
    /// Summed end-to-end sojourn of those requests.
    pub sojourn: Span,
}

/// Blame aggregated over a request population. Always carries all six
/// rows in [`SEGMENTS`] order; `requests == 0` outside SWQ runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlameTable {
    pub rows: Vec<BlameRow>,
    pub requests: u64,
}

impl Default for BlameTable {
    fn default() -> BlameTable {
        BlameTable {
            rows: SEGMENTS
                .iter()
                .map(|&segment| BlameRow { segment, count: 0, blamed: Span::ZERO, sojourn: Span::ZERO })
                .collect(),
            requests: 0,
        }
    }
}

impl BlameTable {
    /// The most-blamed segment (by blamed time), if any request completed.
    pub fn top(&self) -> Option<&BlameRow> {
        self.rows.iter().filter(|r| r.count > 0).max_by_key(|r| r.blamed)
    }

    pub fn total_blamed(&self) -> Span {
        self.rows.iter().fold(Span::ZERO, |a, r| a + r.blamed)
    }

    /// Fraction of total blamed time charged to `segment`.
    pub fn share(&self, segment: &str) -> f64 {
        let total = self.total_blamed().as_ps();
        if total == 0 {
            return 0.0;
        }
        let row = self.rows.iter().find(|r| r.segment == segment);
        row.map_or(0.0, |r| r.blamed.as_ps() as f64 / total as f64)
    }

    fn charge(&mut self, idx: usize, blamed_ps: u64, sojourn_ps: u64) {
        let row = &mut self.rows[idx];
        row.count += 1;
        row.blamed += Span::from_ps(blamed_ps);
        row.sojourn += Span::from_ps(sojourn_ps);
        self.requests += 1;
    }
}

/// First-seen timestamps of each chain stage, per tag. Retried tags keep
/// their first stamps: the sojourn then covers the retry, and the blame
/// lands on whichever gap absorbed it.
#[derive(Debug, Clone, Copy, Default)]
struct Stamps {
    issue: Option<u64>,
    enqueue: Option<u64>,
    doorbell: Option<u64>,
    fetch: Option<u64>,
    serve: Option<u64>,
    complete: Option<u64>,
    deliver: Option<u64>,
}

fn first(slot: &mut Option<u64>, at: u64) {
    if slot.is_none() {
        *slot = Some(at);
    }
}

/// Extracts `(all-requests table, p99-tail table)` from an event stream.
pub(crate) fn extract(events: &[TraceEvent]) -> (BlameTable, BlameTable) {
    let mut tags: BTreeMap<u64, Stamps> = BTreeMap::new();
    for e in events {
        if e.cat != Category::Swq {
            continue;
        }
        let at = e.at.as_ps();
        let st = tags.entry(e.a0).or_default();
        match e.name {
            "swq.issue" => first(&mut st.issue, at),
            "swq.enqueue" => first(&mut st.enqueue, at),
            "swq.doorbell" => first(&mut st.doorbell, at),
            "swq.fetch" => first(&mut st.fetch, at),
            "swq.serve" => first(&mut st.serve, at),
            "swq.complete" => first(&mut st.complete, at),
            "swq.deliver" => first(&mut st.deliver, at),
            _ => {}
        }
    }

    // (sojourn_ps, blamed segment index, blamed_ps) per completed request.
    let mut blamed: Vec<(u64, usize, u64)> = Vec::new();
    for st in tags.values() {
        let (Some(i), Some(en), Some(f), Some(sv), Some(cp), Some(dl)) =
            (st.issue, st.enqueue, st.fetch, st.serve, st.complete, st.deliver)
        else {
            continue;
        };
        if !(i <= en && en <= f && f <= sv && sv <= cp && cp <= dl) {
            continue; // retries or fault injection scrambled the chain
        }
        let mut segs = [0u64; 6];
        segs[0] = en - i;
        match st.doorbell {
            // A doorbell stamp between enqueue and fetch splits the ring
            // wait; batched tags (no doorbell of their own) charge the whole
            // gap to ring_wait.
            Some(db) if (en..=f).contains(&db) => {
                segs[1] = db - en;
                segs[2] = f - db;
            }
            _ => segs[2] = f - en,
        }
        segs[3] = sv - f;
        segs[4] = cp - sv;
        segs[5] = dl - cp;
        let (idx, &max) = segs.iter().enumerate().max_by_key(|&(i, &v)| (v, usize::MAX - i)).unwrap();
        blamed.push((dl - i, idx, max));
    }

    let mut all = BlameTable::default();
    let mut tail = BlameTable::default();
    if blamed.is_empty() {
        return (all, tail);
    }
    let mut sojourns: Vec<u64> = blamed.iter().map(|&(s, _, _)| s).collect();
    sojourns.sort_unstable();
    let n = sojourns.len() as u64;
    let p99_idx = ((n * 99).div_ceil(100) - 1) as usize;
    let p99 = sojourns[p99_idx];
    for &(sojourn, idx, max) in &blamed {
        all.charge(idx, max, sojourn);
        if sojourn >= p99 {
            tail.charge(idx, max, sojourn);
        }
    }
    (all, tail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kus_sim::time::Time;
    use kus_sim::trace::Phase;

    fn ev(name: &'static str, at_ps: u64, tag: u64) -> TraceEvent {
        TraceEvent {
            at: Time::from_ps(at_ps),
            cat: Category::Swq,
            name,
            phase: Phase::Instant,
            track: 0,
            a0: tag,
            a1: 0,
        }
    }

    fn chain(tag: u64, stamps: [u64; 7]) -> Vec<TraceEvent> {
        let names =
            ["swq.issue", "swq.enqueue", "swq.doorbell", "swq.fetch", "swq.serve", "swq.complete", "swq.deliver"];
        names.iter().zip(stamps).map(|(&n, at)| ev(n, at, tag)).collect()
    }

    #[test]
    fn blame_lands_on_longest_segment() {
        // device_service (fetch→serve) is 1000 ps, everything else shorter.
        let evs = chain(1, [0, 10, 20, 100, 1100, 1150, 1200]);
        let (all, tail) = extract(&evs);
        assert_eq!(all.requests, 1);
        let top = all.top().unwrap();
        assert_eq!(top.segment, "device_service");
        assert_eq!(top.blamed, Span::from_ps(1000));
        assert_eq!(top.sojourn, Span::from_ps(1200));
        // Single request: it IS the tail.
        assert_eq!(tail.requests, 1);
        assert_eq!(tail.top().unwrap().segment, "device_service");
    }

    #[test]
    fn segments_telescope_to_sojourn() {
        let stamps = [5u64, 25, 40, 300, 900, 1000, 1300];
        let evs = chain(9, stamps);
        let (all, _) = extract(&evs);
        let total: Span = all.rows.iter().fold(Span::ZERO, |a, r| a + r.sojourn);
        assert_eq!(total, Span::from_ps(stamps[6] - stamps[0]));
        assert!(all.total_blamed() <= total);
    }

    #[test]
    fn incomplete_chains_are_skipped() {
        let mut evs = chain(1, [0, 10, 20, 100, 1100, 1150, 1200]);
        evs.extend(vec![ev("swq.issue", 0, 2), ev("swq.enqueue", 10, 2)]); // never delivered
        let (all, _) = extract(&evs);
        assert_eq!(all.requests, 1);
    }

    #[test]
    fn missing_doorbell_charges_ring_wait() {
        // Batched tag: no doorbell event; enqueue→fetch gap all ring_wait.
        let names = ["swq.issue", "swq.enqueue", "swq.fetch", "swq.serve", "swq.complete", "swq.deliver"];
        let stamps = [0u64, 10, 2000, 2100, 2150, 2200];
        let evs: Vec<_> = names.iter().zip(stamps).map(|(&n, at)| ev(n, at, 3)).collect();
        let (all, _) = extract(&evs);
        assert_eq!(all.top().unwrap().segment, "ring_wait");
        assert_eq!(all.top().unwrap().blamed, Span::from_ps(1990));
    }

    #[test]
    fn p99_table_keeps_only_the_tail() {
        let mut evs = Vec::new();
        // 99 fast requests (distinct sojourns 1000..1098 ps) blamed on
        // device_service, one huge ring_wait straggler. The p99 threshold is
        // the 99th order statistic (1098), so the tail holds that request
        // plus the straggler.
        for tag in 0..99 {
            let base = tag * 100_000;
            evs.extend(chain(
                tag,
                [base, base + 10, base + 20, base + 50, base + 2000, base + 2020, base + 2050 + tag],
            ));
        }
        evs.extend(chain(99, [0, 10, 20, 90_000, 91_000, 91_100, 91_200]));
        let (all, tail) = extract(&evs);
        assert_eq!(all.requests, 100);
        assert_eq!(tail.requests, 2, "p99 table must hold only the tail");
        assert_eq!(tail.top().unwrap().segment, "ring_wait");
        // Mean cause and tail cause disagree — the point of the second table.
        assert_eq!(all.top().unwrap().segment, "device_service");
    }

    #[test]
    fn empty_stream_yields_empty_tables() {
        let (all, tail) = extract(&[]);
        assert_eq!(all.requests, 0);
        assert_eq!(tail.requests, 0);
        assert!(all.top().is_none());
        assert_eq!(all.rows.len(), SEGMENTS.len());
    }
}
