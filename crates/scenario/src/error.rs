//! Scenario diagnostics: every parse/compile error names the section,
//! field, and source line it came from, extending the
//! `PlatformConfig::validate` no-panics posture to the whole scenario
//! stack.

use std::fmt;

use crate::toml::{Item, Sp, Table, TomlError, Value};

/// Why a scenario failed to parse or compile.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioError {
    /// Dotted section path (`""` for top level, `"matrix.plans[1]"` for
    /// array entries).
    pub section: String,
    /// The offending field, when one is known.
    pub field: Option<String>,
    /// 1-based source line, when the error maps to one (programmatic
    /// specs have no lines).
    pub line: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl ScenarioError {
    /// An error with no position information (programmatic specs).
    pub fn msg(message: impl Into<String>) -> ScenarioError {
        ScenarioError { section: String::new(), field: None, line: None, message: message.into() }
    }

    fn at(section: &str, field: Option<&str>, line: Option<usize>, message: String) -> ScenarioError {
        ScenarioError {
            section: section.to_string(),
            field: field.map(str::to_string),
            line,
            message,
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut path = self.section.clone();
        if let Some(field) = &self.field {
            if !path.is_empty() {
                path.push('.');
            }
            path.push_str(field);
        }
        if !path.is_empty() {
            write!(f, "`{path}`")?;
            if let Some(line) = self.line {
                write!(f, " (line {line})")?;
            }
            write!(f, ": ")?;
        } else if let Some(line) = self.line {
            write!(f, "line {line}: ")?;
        }
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ScenarioError {}

impl From<TomlError> for ScenarioError {
    fn from(e: TomlError) -> ScenarioError {
        ScenarioError { section: String::new(), field: None, line: Some(e.line), message: e.message }
    }
}

/// A checked view over a parsed [`Table`]: typed getters record which keys
/// were consumed, and [`Reader::finish`] rejects anything left over, so
/// schema drift (a typo, a removed field) is an error instead of silence.
pub struct Reader<'a> {
    table: &'a Table,
    section: String,
    seen: Vec<&'a str>,
}

impl<'a> Reader<'a> {
    /// A reader over `table`, reporting errors under `section`.
    pub fn new(table: &'a Table, section: impl Into<String>) -> Reader<'a> {
        Reader { table, section: section.into(), seen: Vec::new() }
    }

    /// The section path this reader reports under.
    pub fn section(&self) -> &str {
        &self.section
    }

    fn err(&self, field: Option<&str>, line: Option<usize>, message: String) -> ScenarioError {
        ScenarioError::at(&self.section, field, line, message)
    }

    /// An error attached to `field` in this section.
    pub fn field_err(&self, field: &str, message: impl Into<String>) -> ScenarioError {
        self.err(Some(field), self.table.line_of(field), message.into())
    }

    fn value(&mut self, key: &'a str) -> Result<Option<&'a Sp<Value>>, ScenarioError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(Item::Value(v)) => {
                self.seen.push(key);
                Ok(Some(v))
            }
            Some(_) => Err(self.err(
                Some(key),
                self.table.line_of(key),
                "expected a value, found a table".into(),
            )),
        }
    }

    /// Optional string field.
    pub fn str_opt(&mut self, key: &'a str) -> Result<Option<String>, ScenarioError> {
        match self.value(key)? {
            None => Ok(None),
            Some(Sp { value: Value::Str(s), .. }) => Ok(Some(s.clone())),
            Some(sp) => Err(self.err(
                Some(key),
                Some(sp.line),
                format!("expected a string, found a {}", sp.value.type_name()),
            )),
        }
    }

    /// Optional boolean field.
    pub fn bool_opt(&mut self, key: &'a str) -> Result<Option<bool>, ScenarioError> {
        match self.value(key)? {
            None => Ok(None),
            Some(Sp { value: Value::Bool(b), .. }) => Ok(Some(*b)),
            Some(sp) => Err(self.err(
                Some(key),
                Some(sp.line),
                format!("expected a boolean, found a {}", sp.value.type_name()),
            )),
        }
    }

    /// Optional non-negative integer field.
    pub fn u64_opt(&mut self, key: &'a str) -> Result<Option<u64>, ScenarioError> {
        match self.value(key)? {
            None => Ok(None),
            Some(Sp { value: Value::Int(i), line }) => {
                let line = *line;
                let i = *i;
                u64::try_from(i).map(Some).map_err(|_| {
                    self.err(Some(key), Some(line), format!("{i} must be non-negative"))
                })
            }
            Some(sp) => Err(self.err(
                Some(key),
                Some(sp.line),
                format!("expected an integer, found a {}", sp.value.type_name()),
            )),
        }
    }

    /// Optional float field (integers coerce).
    pub fn f64_opt(&mut self, key: &'a str) -> Result<Option<f64>, ScenarioError> {
        match self.value(key)? {
            None => Ok(None),
            Some(Sp { value: Value::Float(x), .. }) => Ok(Some(*x)),
            Some(Sp { value: Value::Int(i), .. }) => Ok(Some(*i as f64)),
            Some(sp) => Err(self.err(
                Some(key),
                Some(sp.line),
                format!("expected a number, found a {}", sp.value.type_name()),
            )),
        }
    }

    /// Optional rate field in requests/second: a plain number, or a string
    /// with a `k` (×10³) or `m` (×10⁶) suffix — `"250k"`, `"2.5M"`.
    pub fn rate_opt(&mut self, key: &'a str) -> Result<Option<f64>, ScenarioError> {
        let (raw, line) = match self.value(key)? {
            None => return Ok(None),
            Some(Sp { value: Value::Float(x), .. }) => return Ok(Some(*x)),
            Some(Sp { value: Value::Int(i), .. }) => return Ok(Some(*i as f64)),
            Some(Sp { value: Value::Str(s), line }) => (s.trim().to_string(), *line),
            Some(sp) => {
                return Err(self.err(
                    Some(key),
                    Some(sp.line),
                    format!("expected a rate, found a {}", sp.value.type_name()),
                ))
            }
        };
        let (digits, scale) = match raw.chars().next_back() {
            Some('k' | 'K') => (&raw[..raw.len() - 1], 1e3),
            Some('m' | 'M') => (&raw[..raw.len() - 1], 1e6),
            _ => (raw.as_str(), 1.0),
        };
        match digits.trim().parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Some(x * scale)),
            _ => Err(self.err(
                Some(key),
                Some(line),
                format!("'{raw}' is not a rate (use a number or e.g. \"250k\", \"2.5M\")"),
            )),
        }
    }

    /// Optional array of non-negative integers.
    pub fn u64_array_opt(&mut self, key: &'a str) -> Result<Option<Vec<u64>>, ScenarioError> {
        match self.value(key)? {
            None => Ok(None),
            Some(Sp { value: Value::Array(items), .. }) => {
                let mut out = Vec::with_capacity(items.len());
                for sp in items {
                    match &sp.value {
                        Value::Int(i) if *i >= 0 => out.push(*i as u64),
                        other => {
                            return Err(self.err(
                                Some(key),
                                Some(sp.line),
                                format!(
                                    "expected a non-negative integer element, found {}",
                                    other.type_name()
                                ),
                            ));
                        }
                    }
                }
                Ok(Some(out))
            }
            Some(sp) => Err(self.err(
                Some(key),
                Some(sp.line),
                format!("expected an array, found a {}", sp.value.type_name()),
            )),
        }
    }

    /// Optional array of strings.
    pub fn str_array_opt(&mut self, key: &'a str) -> Result<Option<Vec<String>>, ScenarioError> {
        match self.value(key)? {
            None => Ok(None),
            Some(Sp { value: Value::Array(items), .. }) => {
                let mut out = Vec::with_capacity(items.len());
                for sp in items {
                    match &sp.value {
                        Value::Str(s) => out.push(s.clone()),
                        other => {
                            return Err(self.err(
                                Some(key),
                                Some(sp.line),
                                format!("expected a string element, found {}", other.type_name()),
                            ));
                        }
                    }
                }
                Ok(Some(out))
            }
            Some(sp) => Err(self.err(
                Some(key),
                Some(sp.line),
                format!("expected an array, found a {}", sp.value.type_name()),
            )),
        }
    }

    /// Optional sub-table (consumes the key; absent tables return `None`).
    pub fn table_opt(&mut self, key: &'a str) -> Result<Option<&'a Table>, ScenarioError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(Item::Table(t)) => {
                self.seen.push(key);
                Ok(Some(t))
            }
            Some(_) => Err(self.err(
                Some(key),
                self.table.line_of(key),
                "expected a table, found a value".into(),
            )),
        }
    }

    /// Optional array of tables (`[[key]]` entries).
    pub fn tables_opt(&mut self, key: &'a str) -> Result<Option<&'a [Table]>, ScenarioError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(Item::ArrayOfTables(v)) => {
                self.seen.push(key);
                Ok(Some(v.as_slice()))
            }
            Some(_) => Err(self.err(
                Some(key),
                self.table.line_of(key),
                "expected an array of tables (`[[...]]`)".into(),
            )),
        }
    }

    /// Rejects any key the schema did not consume.
    pub fn finish(self) -> Result<(), ScenarioError> {
        for (key, line, _) in &self.table.entries {
            if !self.seen.iter().any(|s| s == key) {
                return Err(self.err(
                    Some(key),
                    Some(*line),
                    format!("unknown key `{key}`"),
                ));
            }
        }
        Ok(())
    }
}
