//! A small hand-written TOML reader for scenario files.
//!
//! The workspace builds offline, so the full `toml` crate is not
//! available; this module implements the subset the scenario schema
//! needs — tables (`[a.b]`), arrays of tables (`[[a.b]]`), bare keys,
//! strings, integers (with `_` separators), floats, booleans, inline
//! arrays, and `#` comments — with a source line recorded on every value
//! so schema errors can point at the offending line.

use std::fmt;

/// A parsed value with the line it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct Sp<T> {
    /// The value.
    pub value: T,
    /// 1-based source line.
    pub line: usize,
}

/// A primitive TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A double-quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An inline array `[v, v, ...]`.
    Array(Vec<Sp<Value>>),
}

impl Value {
    /// A short name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
        }
    }
}

/// A table entry: a plain value, a sub-table, or an array of tables.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `key = value`.
    Value(Sp<Value>),
    /// `[key]` (or implicitly created by a deeper header).
    Table(Table),
    /// `[[key]]` repetitions.
    ArrayOfTables(Vec<Table>),
}

/// An ordered table: entries keep file order so serialization and error
/// reporting are stable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    /// `(key, header-or-assignment line, item)` in file order.
    pub entries: Vec<(String, usize, Item)>,
}

impl Table {
    /// Looks up a direct entry.
    pub fn get(&self, key: &str) -> Option<&Item> {
        self.entries.iter().find(|(k, _, _)| k == key).map(|(_, _, i)| i)
    }

    /// The line a direct entry was introduced on.
    pub fn line_of(&self, key: &str) -> Option<usize> {
        self.entries.iter().find(|(k, _, _)| k == key).map(|(_, l, _)| *l)
    }

    fn get_mut(&mut self, key: &str) -> Option<&mut Item> {
        self.entries.iter_mut().find(|(k, _, _)| k == key).map(|(_, _, i)| i)
    }

    fn ensure_table(&mut self, key: &str, line: usize) -> Result<&mut Table, TomlError> {
        if self.get(key).is_none() {
            self.entries.push((key.to_string(), line, Item::Table(Table::default())));
        }
        match self.get_mut(key).unwrap() {
            Item::Table(t) => Ok(t),
            Item::ArrayOfTables(v) => Ok(v.last_mut().expect("array-of-tables never empty")),
            Item::Value(_) => {
                Err(TomlError::new(line, format!("`{key}` is already a value, not a table")))
            }
        }
    }
}

/// A parse error with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl TomlError {
    fn new(line: usize, message: impl Into<String>) -> TomlError {
        TomlError { line, message: message.into() }
    }
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn valid_key(k: &str) -> bool {
    !k.is_empty() && k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Parses a dotted header path like `matrix.plans` into segments.
fn parse_path(path: &str, line: usize) -> Result<Vec<String>, TomlError> {
    let segs: Vec<String> = path.split('.').map(|s| s.trim().to_string()).collect();
    for s in &segs {
        if !valid_key(s) {
            return Err(TomlError::new(line, format!("bad table name `{path}`")));
        }
    }
    Ok(segs)
}

/// Parses one scalar or inline-array token.
fn parse_value(raw: &str, line: usize) -> Result<Value, TomlError> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(TomlError::new(line, "missing value"));
    }
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return Err(TomlError::new(line, "unterminated string"));
        };
        if inner.contains('"') {
            return Err(TomlError::new(line, "embedded quotes are not supported"));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    if raw == "true" {
        return Ok(Value::Bool(true));
    }
    if raw == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = raw.strip_prefix('[') {
        let Some(inner) = inner.strip_suffix(']') else {
            return Err(TomlError::new(line, "unterminated array (arrays must be single-line)"));
        };
        let mut items = Vec::new();
        // Split on commas outside strings; nested arrays are not needed by
        // the schema and are rejected by the element parser.
        let mut depth = 0usize;
        let mut in_str = false;
        let mut start = 0usize;
        for (i, c) in inner.char_indices() {
            match c {
                '"' => in_str = !in_str,
                '[' if !in_str => depth += 1,
                ']' if !in_str => depth = depth.saturating_sub(1),
                ',' if !in_str && depth == 0 => {
                    let piece = inner[start..i].trim();
                    if !piece.is_empty() {
                        items.push(Sp { value: parse_value(piece, line)?, line });
                    }
                    start = i + 1;
                }
                _ => {}
            }
        }
        let piece = inner[start..].trim();
        if !piece.is_empty() {
            items.push(Sp { value: parse_value(piece, line)?, line });
        }
        return Ok(Value::Array(items));
    }
    // A number: underscores allowed; a '.', exponent, or inf marks a float.
    let cleaned: String = raw.chars().filter(|&c| c != '_').collect();
    let is_float = cleaned.contains('.') || cleaned.contains('e') || cleaned.contains('E');
    if is_float {
        if let Ok(f) = cleaned.parse::<f64>() {
            return Ok(Value::Float(f));
        }
    } else if let Ok(i) = cleaned.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    Err(TomlError::new(line, format!("cannot parse `{raw}` as a value")))
}

/// Parses a TOML document into a [`Table`].
pub fn parse(text: &str) -> Result<Table, TomlError> {
    let mut root = Table::default();
    // Path of the table currently receiving `key = value` lines.
    let mut current: Vec<String> = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let Some(path) = rest.strip_suffix("]]") else {
                return Err(TomlError::new(lineno, "unterminated `[[` header"));
            };
            let segs = parse_path(path, lineno)?;
            let (last, parents) = segs.split_last().expect("parse_path rejects empty");
            let mut t = &mut root;
            for seg in parents {
                t = t.ensure_table(seg, lineno)?;
            }
            match t.get_mut(last) {
                None => {
                    t.entries.push((
                        last.clone(),
                        lineno,
                        Item::ArrayOfTables(vec![Table::default()]),
                    ));
                }
                Some(Item::ArrayOfTables(v)) => v.push(Table::default()),
                Some(_) => {
                    return Err(TomlError::new(
                        lineno,
                        format!("`{path}` is already defined and is not an array of tables"),
                    ));
                }
            }
            current = segs;
        } else if let Some(rest) = line.strip_prefix('[') {
            let Some(path) = rest.strip_suffix(']') else {
                return Err(TomlError::new(lineno, "unterminated `[` header"));
            };
            let segs = parse_path(path, lineno)?;
            let mut t = &mut root;
            for seg in &segs {
                t = t.ensure_table(seg, lineno)?;
            }
            current = segs;
        } else if let Some(eq) = line.find('=') {
            let key = line[..eq].trim();
            if !valid_key(key) {
                return Err(TomlError::new(lineno, format!("bad key `{key}`")));
            }
            let value = parse_value(&line[eq + 1..], lineno)?;
            let mut t = &mut root;
            for seg in current.clone() {
                t = t.ensure_table(&seg, lineno)?;
            }
            if t.get(key).is_some() {
                return Err(TomlError::new(lineno, format!("duplicate key `{key}`")));
            }
            t.entries.push((key.to_string(), lineno, Item::Value(Sp { value, line: lineno })));
        } else {
            return Err(TomlError::new(lineno, format!("cannot parse line `{line}`")));
        }
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_values_and_arrays() {
        let t = parse(
            "name = \"calm\" # a comment\n\
             count = 1_000\n\
             rate = 1.5e6\n\
             on = true\n\
             [traffic]\n\
             rates = [1, 2, 3]\n\
             [traffic.deep]\n\
             x = 2\n",
        )
        .expect("parses");
        assert_eq!(t.get("name"), Some(&Item::Value(Sp { value: Value::Str("calm".into()), line: 1 })));
        assert_eq!(t.get("count"), Some(&Item::Value(Sp { value: Value::Int(1000), line: 2 })));
        let Some(Item::Table(traffic)) = t.get("traffic") else { panic!("traffic table") };
        let Some(Item::Value(rates)) = traffic.get("rates") else { panic!("rates") };
        let Value::Array(items) = &rates.value else { panic!("array") };
        assert_eq!(items.len(), 3);
        let Some(Item::Table(deep)) = traffic.get("deep") else { panic!("deep table") };
        assert_eq!(deep.get("x"), Some(&Item::Value(Sp { value: Value::Int(2), line: 8 })));
    }

    #[test]
    fn array_of_tables_accumulates() {
        let t = parse(
            "[[plans]]\nname = \"calm\"\n[[plans]]\nname = \"freeze\"\nfreeze_period_ns = 150_000\n",
        )
        .expect("parses");
        let Some(Item::ArrayOfTables(v)) = t.get("plans") else { panic!("plans array") };
        assert_eq!(v.len(), 2);
        assert_eq!(v[1].get("name"), Some(&Item::Value(Sp { value: Value::Str("freeze".into()), line: 4 })));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ok = 1\nbad line\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse("x = 1\nx = 2\n").unwrap_err();
        assert!(e.message.contains("duplicate"), "{}", e.message);
    }

    #[test]
    fn comments_inside_strings_survive() {
        let t = parse("s = \"a # b\"\n").expect("parses");
        assert_eq!(t.get("s"), Some(&Item::Value(Sp { value: Value::Str("a # b".into()), line: 1 })));
    }
}
