//! [`ScenarioSpec`]: the parse-phase mirror of the scenario schema.
//!
//! A spec is an unvalidated description — exactly what the TOML says, or
//! what the programmatic builders were handed. [`ScenarioSpec::parse`]
//! maps TOML onto the spec with per-field line diagnostics;
//! [`ScenarioSpec::to_toml`] writes the canonical serialization (every
//! field, explicit); `Scenario::compile` (in
//! [`scenario`](crate::scenario)) validates and freezes it. The
//! spec ↔ TOML mapping is exhaustive in both directions: `to_toml`
//! destructures every struct field, and unknown TOML keys are errors, so
//! schema drift fails loudly instead of silently.

use kus_core::prelude::{JitterModel, Mechanism, Span};
use kus_load::{
    AdmissionControl, ArrivalProcess, DmaNic, KeyPopularity, NanoNic, NetConfig, NicModelKind,
    RetryPolicy, SloSpec, TierSpec, TierTopology,
};
use kus_sim::fault::FaultPlan;

use crate::error::{Reader, ScenarioError};
use crate::toml::{self, Table};

/// Which service handles requests, with its sizing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceSpec {
    /// One device read from a ring of `lines` cache lines.
    Echo {
        /// Ring size in cache lines.
        lines: u64,
    },
    /// The Memcached-style KV lookup path.
    Memcached {
        /// Items inserted during the build.
        n_items: u64,
        /// Value size in cache lines.
        value_lines: u64,
        /// Work instructions after each lookup.
        work_count: u32,
    },
    /// The Bloom-filter probe path.
    Bloom {
        /// Keys inserted during the build.
        n_keys: u64,
        /// Hash probes per lookup.
        k: u64,
        /// Work instructions after each lookup.
        work_count: u32,
    },
}

impl ServiceSpec {
    /// The service's short name (matches `Service::name`).
    pub fn name(&self) -> &'static str {
        match self {
            ServiceSpec::Echo { .. } => "echo",
            ServiceSpec::Memcached { .. } => "memcached",
            ServiceSpec::Bloom { .. } => "bloom",
        }
    }
}

impl Default for ServiceSpec {
    fn default() -> ServiceSpec {
        ServiceSpec::Echo { lines: 4096 }
    }
}

/// Optional platform overrides over [`PlatformConfig::paper_default`]
/// (`None` = keep the paper default, so a scenario that sets nothing
/// compiles to exactly today's platform).
///
/// [`PlatformConfig::paper_default`]: kus_core::prelude::PlatformConfig::paper_default
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlatformSpec {
    /// Access mechanism under test.
    pub mechanism: Option<Mechanism>,
    /// Host core count.
    pub cores: Option<usize>,
    /// Fibers per core.
    pub fibers_per_core: Option<usize>,
    /// SMT contexts per core.
    pub smt: Option<usize>,
    /// Host-observed device latency.
    pub device_latency: Option<Span>,
    /// Device jitter spread.
    pub device_jitter: Option<Span>,
    /// Device jitter shape (`None` = uniform).
    pub jitter_model: Option<JitterModel>,
    /// User-mode context-switch cost.
    pub ctx_switch: Option<Span>,
    /// Whether the record/replay device is used (false = single-phase).
    pub use_replay_device: Option<bool>,
    /// Dataset size in bytes.
    pub dataset_bytes: Option<u64>,
    /// SWQ ring capacity.
    pub swq_ring_capacity: Option<usize>,
}

/// The overload matrix a scenario can carry: admission policy × fault
/// plan × offered rate, plus the closed-loop retry pair. Defaults mirror
/// `OverloadSweepSpec::new` in `kus-bench`, so `[matrix]` with no keys is
/// today's overload sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixSpec {
    /// Admission-policy axis.
    pub policies: Vec<AdmissionControl>,
    /// Fault-plan axis (`(name, plan)`; the name keys cell labels).
    pub plans: Vec<(String, FaultPlan)>,
    /// Offered-rate axis (requests/second).
    pub rates: Vec<u64>,
    /// Whether the budgeted/unbudgeted retry pair is appended.
    pub retry_pair: bool,
}

impl Default for MatrixSpec {
    fn default() -> MatrixSpec {
        MatrixSpec {
            policies: vec![
                AdmissionControl::Static,
                AdmissionControl::DeadlineAware {
                    target: Span::from_us(2),
                    interval: Span::from_us(5),
                },
                AdmissionControl::AdaptiveConcurrency { initial: 4, max: 16, window: 16 },
            ],
            plans: vec![
                ("calm".into(), FaultPlan::none()),
                (
                    "freeze".into(),
                    FaultPlan::none().with_freeze_windows(
                        Span::from_us(150),
                        Span::from_us(40),
                        Span::from_us(5),
                    ),
                ),
                ("stall".into(), FaultPlan::none().with_dispatcher_stalls(0.3, Span::from_us(8))),
            ],
            rates: vec![1_000_000, 3_000_000],
            retry_pair: true,
        }
    }
}

/// One declarative world: arrivals × key skew × service × platform ×
/// queueing × SLOs × admission × retry × faults, with an optional
/// overload matrix. Field defaults exactly reproduce `LoadSpec::new` and
/// `PlatformConfig::paper_default`, so the empty scenario is today's
/// default experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (labels, artifacts, fingerprint).
    pub name: String,
    /// Free-form description.
    pub description: String,
    /// Platform RNG seed override (`None` = the paper default seed).
    pub seed: Option<u64>,
    /// The arrival process.
    pub arrival: ArrivalProcess,
    /// Open-loop request count (closed-loop: total request budget).
    pub requests: usize,
    /// Key-popularity skew applied by the service.
    pub keys: KeyPopularity,
    /// The service under load.
    pub service: ServiceSpec,
    /// Platform overrides.
    pub platform: PlatformSpec,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Fixed per-dispatch overhead.
    pub dispatch_overhead: Span,
    /// Service-level objectives.
    pub slo: SloSpec,
    /// Admission-control policy.
    pub admission: AdmissionControl,
    /// Client retry policy (closed-loop arrivals only).
    pub retry: RetryPolicy,
    /// Fault plan for single-scenario runs (matrix cells override it).
    pub faults: FaultPlan,
    /// Modelled NIC front end (default off: dispatcher-only world).
    pub net: NetConfig,
    /// Tier-chain topology over the service (default direct).
    pub tiers: TierSpec,
    /// Outcome expectations checked by `figures scenario` (`None` = none).
    pub expect: Option<ExpectSpec>,
    /// Optional overload matrix.
    pub matrix: Option<MatrixSpec>,
}

/// Declarative outcome expectations: the executable-claim layer. A world
/// carrying an `[expect]` section *fails* the `figures scenario` run when
/// its observed outcome regresses below the claim.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExpectSpec {
    /// Expected degradation verdict label
    /// (`graceful` / `brownout` / `collapse` / `unstable`).
    pub verdict: Option<String>,
    /// Expected SLO outcome: `true` = pass, `false` = fail.
    pub slo_pass: Option<bool>,
    /// Minimum demonstrated goodput in requests/second: the run's goodput
    /// must reach the knee fraction (95%) of this rate.
    pub knee_at_least: Option<f64>,
    /// Expected critical tier: the hop owning the largest critical-path
    /// share in the run's `BlameReport` (e.g. `"service"`, `"queue"`, or
    /// a shard hop like `"rpc.shard1"`). Stating it enables the causal
    /// event class for the run.
    pub critical_tier: Option<String>,
    /// Minimum critical-path share in `(0, 1]` the observed critical tier
    /// must own. Stating it enables the causal event class for the run.
    pub critical_share_at_least: Option<f64>,
}

impl ExpectSpec {
    /// Checks internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(v) = &self.verdict {
            if !matches!(v.as_str(), "graceful" | "brownout" | "collapse" | "unstable") {
                return Err(format!(
                    "unknown verdict '{v}' (graceful | brownout | collapse | unstable)"
                ));
            }
        }
        if let Some(k) = self.knee_at_least {
            if !k.is_finite() || k <= 0.0 {
                return Err(format!("knee_at_least must be a positive rate, got {k}"));
            }
        }
        if let Some(t) = &self.critical_tier {
            if t.is_empty() {
                return Err("critical_tier must name a hop (e.g. \"service\")".into());
            }
        }
        if let Some(s) = self.critical_share_at_least {
            if !s.is_finite() || s <= 0.0 || s > 1.0 {
                return Err(format!(
                    "critical_share_at_least must be a share in (0, 1], got {s}"
                ));
            }
        }
        if self.verdict.is_none()
            && self.slo_pass.is_none()
            && self.knee_at_least.is_none()
            && self.critical_tier.is_none()
            && self.critical_share_at_least.is_none()
        {
            return Err("an [expect] section must state at least one expectation".into());
        }
        Ok(())
    }

    /// True when any stated claim needs the causal critical-path blame
    /// decomposition (and therefore the causal event class) to check.
    pub fn wants_blame(&self) -> bool {
        self.critical_tier.is_some() || self.critical_share_at_least.is_some()
    }
}

impl ScenarioSpec {
    /// A scenario with `LoadSpec::new`-equivalent defaults: 1000 requests,
    /// a 64-deep static queue, 50 ns dispatch overhead, no SLOs, no
    /// retries, no faults, sequential keys, the echo service, and the
    /// untouched paper platform.
    pub fn new(name: impl Into<String>, arrival: ArrivalProcess) -> ScenarioSpec {
        ScenarioSpec {
            name: name.into(),
            description: String::new(),
            seed: None,
            arrival,
            requests: 1000,
            keys: KeyPopularity::Sequential,
            service: ServiceSpec::default(),
            platform: PlatformSpec::default(),
            queue_capacity: 64,
            dispatch_overhead: Span::from_ns(50),
            slo: SloSpec::none(),
            admission: AdmissionControl::Static,
            retry: RetryPolicy::none(),
            faults: FaultPlan::none(),
            net: NetConfig::default(),
            tiers: TierSpec::default(),
            expect: None,
            matrix: None,
        }
    }

    /// Sets the description.
    pub fn description(mut self, d: impl Into<String>) -> ScenarioSpec {
        self.description = d.into();
        self
    }

    /// Overrides the platform seed.
    pub fn seed(mut self, seed: u64) -> ScenarioSpec {
        self.seed = Some(seed);
        self
    }

    /// Sets the request count.
    pub fn requests(mut self, n: usize) -> ScenarioSpec {
        self.requests = n;
        self
    }

    /// Sets the key-popularity skew.
    pub fn keys(mut self, k: KeyPopularity) -> ScenarioSpec {
        self.keys = k;
        self
    }

    /// Sets the service.
    pub fn service(mut self, s: ServiceSpec) -> ScenarioSpec {
        self.service = s;
        self
    }

    /// Sets the platform overrides.
    pub fn platform(mut self, p: PlatformSpec) -> ScenarioSpec {
        self.platform = p;
        self
    }

    /// Sets the admission queue capacity.
    pub fn queue_capacity(mut self, n: usize) -> ScenarioSpec {
        self.queue_capacity = n;
        self
    }

    /// Sets the per-dispatch overhead.
    pub fn dispatch_overhead(mut self, s: Span) -> ScenarioSpec {
        self.dispatch_overhead = s;
        self
    }

    /// Sets the SLOs.
    pub fn slo(mut self, slo: SloSpec) -> ScenarioSpec {
        self.slo = slo;
        self
    }

    /// Sets the admission policy.
    pub fn admission(mut self, a: AdmissionControl) -> ScenarioSpec {
        self.admission = a;
        self
    }

    /// Sets the retry policy.
    pub fn retry(mut self, r: RetryPolicy) -> ScenarioSpec {
        self.retry = r;
        self
    }

    /// Sets the fault plan.
    pub fn faults(mut self, f: FaultPlan) -> ScenarioSpec {
        self.faults = f;
        self
    }

    /// Sets the modelled NIC front end.
    pub fn net(mut self, n: NetConfig) -> ScenarioSpec {
        self.net = n;
        self
    }

    /// Sets the tier-chain topology.
    pub fn tiers(mut self, t: TierSpec) -> ScenarioSpec {
        self.tiers = t;
        self
    }

    /// Attaches outcome expectations.
    pub fn expect(mut self, e: ExpectSpec) -> ScenarioSpec {
        self.expect = Some(e);
        self
    }

    /// Attaches an overload matrix.
    pub fn matrix(mut self, m: MatrixSpec) -> ScenarioSpec {
        self.matrix = Some(m);
        self
    }

    /// Parses a scenario from TOML text.
    pub fn parse(text: &str) -> Result<ScenarioSpec, ScenarioError> {
        let root = toml::parse(text)?;
        let mut r = Reader::new(&root, "");
        let Some(name) = r.str_opt("name")? else {
            return Err(ScenarioError::msg("scenario needs a top-level `name`"));
        };
        let mut spec = ScenarioSpec::new(name, ArrivalProcess::Poisson { rate_rps: 1.0 });
        if let Some(d) = r.str_opt("description")? {
            spec.description = d;
        }
        spec.seed = r.u64_opt("seed")?;
        if let Some(t) = r.table_opt("traffic")? {
            let (arrival, requests) = parse_traffic(t)?;
            spec.arrival = arrival;
            if let Some(n) = requests {
                spec.requests = n;
            }
        }
        if let Some(t) = r.table_opt("keys")? {
            spec.keys = parse_keys(t)?;
        }
        if let Some(t) = r.table_opt("service")? {
            spec.service = parse_service(t)?;
        }
        if let Some(t) = r.table_opt("platform")? {
            spec.platform = parse_platform(t)?;
        }
        if let Some(t) = r.table_opt("queue")? {
            let mut q = Reader::new(t, "queue");
            if let Some(n) = q.u64_opt("capacity")? {
                spec.queue_capacity = n as usize;
            }
            if let Some(ns) = q.f64_opt("dispatch_overhead_ns")? {
                spec.dispatch_overhead = span_ns(&q, "dispatch_overhead_ns", ns)?;
            }
            q.finish()?;
        }
        if let Some(t) = r.table_opt("slo")? {
            spec.slo = parse_slo(t)?;
        }
        if let Some(t) = r.table_opt("admission")? {
            spec.admission = parse_admission(t, "admission")?;
        }
        if let Some(t) = r.table_opt("retry")? {
            spec.retry = parse_retry(t)?;
        }
        if let Some(t) = r.table_opt("faults")? {
            spec.faults = parse_faults(t, "faults")?;
        }
        if let Some(t) = r.table_opt("net")? {
            spec.net = parse_net(t)?;
        }
        if let Some(t) = r.table_opt("tiers")? {
            spec.tiers = parse_tiers(t)?;
        }
        if let Some(t) = r.table_opt("expect")? {
            spec.expect = Some(parse_expect(t)?);
        }
        if let Some(t) = r.table_opt("matrix")? {
            spec.matrix = Some(parse_matrix(t)?);
        }
        r.finish()?;
        Ok(spec)
    }

    /// Writes the canonical TOML serialization: every section, every
    /// field, explicit. `parse(to_toml(spec))` reproduces `spec` (and
    /// therefore its compiled fingerprint) exactly.
    pub fn to_toml(&self) -> String {
        // Exhaustive destructuring: adding a ScenarioSpec field without
        // serializing it fails to compile here.
        let ScenarioSpec {
            name,
            description,
            seed,
            arrival,
            requests,
            keys,
            service,
            platform,
            queue_capacity,
            dispatch_overhead,
            slo,
            admission,
            retry,
            faults,
            net,
            tiers,
            expect,
            matrix,
        } = self;
        let mut out = String::new();
        out.push_str(&format!("name = {}\n", toml_str(name)));
        out.push_str(&format!("description = {}\n", toml_str(description)));
        if let Some(seed) = seed {
            out.push_str(&format!("seed = {seed}\n"));
        }

        out.push_str("\n[traffic]\n");
        out.push_str(&format!("requests = {requests}\n"));
        match *arrival {
            ArrivalProcess::Poisson { rate_rps } => {
                out.push_str("arrival = \"poisson\"\n");
                out.push_str(&format!("rate_rps = {}\n", fmt_f64(rate_rps)));
            }
            ArrivalProcess::OnOff { rate_rps, on, off } => {
                out.push_str("arrival = \"onoff\"\n");
                out.push_str(&format!("rate_rps = {}\n", fmt_f64(rate_rps)));
                out.push_str(&format!("on_ns = {}\n", fmt_span(on)));
                out.push_str(&format!("off_ns = {}\n", fmt_span(off)));
            }
            ArrivalProcess::Ramp { start_rps, end_rps, over } => {
                out.push_str("arrival = \"ramp\"\n");
                out.push_str(&format!("start_rps = {}\n", fmt_f64(start_rps)));
                out.push_str(&format!("end_rps = {}\n", fmt_f64(end_rps)));
                out.push_str(&format!("over_ns = {}\n", fmt_span(over)));
            }
            ArrivalProcess::Diurnal { base_rps, amplitude, period } => {
                out.push_str("arrival = \"diurnal\"\n");
                out.push_str(&format!("base_rps = {}\n", fmt_f64(base_rps)));
                out.push_str(&format!("amplitude = {}\n", fmt_f64(amplitude)));
                out.push_str(&format!("period_ns = {}\n", fmt_span(period)));
            }
            ArrivalProcess::FlashCrowd { base_rps, spike_rps, at, rise, hold, fall } => {
                out.push_str("arrival = \"flashcrowd\"\n");
                out.push_str(&format!("base_rps = {}\n", fmt_f64(base_rps)));
                out.push_str(&format!("spike_rps = {}\n", fmt_f64(spike_rps)));
                out.push_str(&format!("at_ns = {}\n", fmt_span(at)));
                out.push_str(&format!("rise_ns = {}\n", fmt_span(rise)));
                out.push_str(&format!("hold_ns = {}\n", fmt_span(hold)));
                out.push_str(&format!("fall_ns = {}\n", fmt_span(fall)));
            }
            ArrivalProcess::Bursts { base_rps, burst_rps, period, burst_len } => {
                out.push_str("arrival = \"bursts\"\n");
                out.push_str(&format!("base_rps = {}\n", fmt_f64(base_rps)));
                out.push_str(&format!("burst_rps = {}\n", fmt_f64(burst_rps)));
                out.push_str(&format!("period_ns = {}\n", fmt_span(period)));
                out.push_str(&format!("burst_len_ns = {}\n", fmt_span(burst_len)));
            }
            ArrivalProcess::ClosedLoop { users, think } => {
                out.push_str("arrival = \"closedloop\"\n");
                out.push_str(&format!("users = {users}\n"));
                out.push_str(&format!("think_ns = {}\n", fmt_span(think)));
            }
        }

        out.push_str("\n[keys]\n");
        match *keys {
            KeyPopularity::Sequential => out.push_str("popularity = \"sequential\"\n"),
            KeyPopularity::Zipfian { theta } => {
                out.push_str("popularity = \"zipfian\"\n");
                out.push_str(&format!("theta = {}\n", fmt_f64(theta)));
            }
            KeyPopularity::HotSet { hot_fraction, hot_weight } => {
                out.push_str("popularity = \"hotset\"\n");
                out.push_str(&format!("hot_fraction = {}\n", fmt_f64(hot_fraction)));
                out.push_str(&format!("hot_weight = {}\n", fmt_f64(hot_weight)));
            }
        }

        out.push_str("\n[service]\n");
        match *service {
            ServiceSpec::Echo { lines } => {
                out.push_str("kind = \"echo\"\n");
                out.push_str(&format!("lines = {lines}\n"));
            }
            ServiceSpec::Memcached { n_items, value_lines, work_count } => {
                out.push_str("kind = \"memcached\"\n");
                out.push_str(&format!("n_items = {n_items}\n"));
                out.push_str(&format!("value_lines = {value_lines}\n"));
                out.push_str(&format!("work_count = {work_count}\n"));
            }
            ServiceSpec::Bloom { n_keys, k, work_count } => {
                out.push_str("kind = \"bloom\"\n");
                out.push_str(&format!("n_keys = {n_keys}\n"));
                out.push_str(&format!("k = {k}\n"));
                out.push_str(&format!("work_count = {work_count}\n"));
            }
        }

        out.push_str("\n[platform]\n");
        let PlatformSpec {
            mechanism,
            cores,
            fibers_per_core,
            smt,
            device_latency,
            device_jitter,
            jitter_model,
            ctx_switch,
            use_replay_device,
            dataset_bytes,
            swq_ring_capacity,
        } = platform;
        if let Some(m) = mechanism {
            let s = match m {
                Mechanism::OnDemand => "ondemand",
                Mechanism::Prefetch => "prefetch",
                Mechanism::SoftwareQueue => "swq",
            };
            out.push_str(&format!("mechanism = \"{s}\"\n"));
        }
        if let Some(n) = cores {
            out.push_str(&format!("cores = {n}\n"));
        }
        if let Some(n) = fibers_per_core {
            out.push_str(&format!("fibers_per_core = {n}\n"));
        }
        if let Some(n) = smt {
            out.push_str(&format!("smt = {n}\n"));
        }
        if let Some(s) = device_latency {
            out.push_str(&format!("device_latency_ns = {}\n", fmt_span(*s)));
        }
        if let Some(s) = device_jitter {
            out.push_str(&format!("device_jitter_ns = {}\n", fmt_span(*s)));
        }
        match jitter_model {
            None => {}
            Some(JitterModel::Uniform) => out.push_str("jitter_model = \"uniform\"\n"),
            Some(JitterModel::Bimodal { tail_prob, tail }) => {
                out.push_str("jitter_model = \"bimodal\"\n");
                out.push_str(&format!("jitter_tail_prob = {}\n", fmt_f64(*tail_prob)));
                out.push_str(&format!("jitter_tail_ns = {}\n", fmt_span(*tail)));
            }
        }
        if let Some(s) = ctx_switch {
            out.push_str(&format!("ctx_switch_ns = {}\n", fmt_span(*s)));
        }
        if let Some(b) = use_replay_device {
            out.push_str(&format!("use_replay_device = {b}\n"));
        }
        if let Some(n) = dataset_bytes {
            out.push_str(&format!("dataset_bytes = {n}\n"));
        }
        if let Some(n) = swq_ring_capacity {
            out.push_str(&format!("swq_ring_capacity = {n}\n"));
        }

        out.push_str("\n[queue]\n");
        out.push_str(&format!("capacity = {queue_capacity}\n"));
        out.push_str(&format!("dispatch_overhead_ns = {}\n", fmt_span(*dispatch_overhead)));

        out.push_str("\n[slo]\n");
        let SloSpec { p99, p999, max_shed_fraction } = slo;
        if let Some(s) = p99 {
            out.push_str(&format!("p99_ns = {}\n", fmt_span(*s)));
        }
        if let Some(s) = p999 {
            out.push_str(&format!("p999_ns = {}\n", fmt_span(*s)));
        }
        if let Some(x) = max_shed_fraction {
            out.push_str(&format!("max_shed_fraction = {}\n", fmt_f64(*x)));
        }

        out.push_str("\n[admission]\n");
        write_admission(&mut out, admission);

        out.push_str("\n[retry]\n");
        let RetryPolicy { timeout, max_attempts, budget, backoff, hedge_quantile } = retry;
        if let Some(s) = timeout {
            out.push_str(&format!("timeout_ns = {}\n", fmt_span(*s)));
        }
        out.push_str(&format!("max_attempts = {max_attempts}\n"));
        if let Some(b) = budget {
            out.push_str(&format!("budget = {}\n", fmt_f64(*b)));
        }
        out.push_str(&format!("backoff_ns = {}\n", fmt_span(*backoff)));
        if let Some(q) = hedge_quantile {
            out.push_str(&format!("hedge_quantile = {}\n", fmt_f64(*q)));
        }

        out.push_str("\n[faults]\n");
        write_faults(&mut out, faults);

        if *net != NetConfig::default() {
            out.push_str("\n[net]\n");
            let NetConfig {
                enabled,
                nic,
                rx_queues,
                flows,
                request_bytes,
                response_bytes,
                link_gbps,
                proto,
                steer,
                jitter,
            } = net;
            let model = if *enabled { nic.name() } else { "off" };
            out.push_str(&format!("model = \"{model}\"\n"));
            out.push_str(&format!("rx_queues = {rx_queues}\n"));
            out.push_str(&format!("flows = {flows}\n"));
            out.push_str(&format!("request_bytes = {request_bytes}\n"));
            out.push_str(&format!("response_bytes = {response_bytes}\n"));
            out.push_str(&format!("link_gbps = {}\n", fmt_f64(*link_gbps)));
            out.push_str(&format!("proto_ns = {}\n", fmt_span(*proto)));
            out.push_str(&format!("steer_ns = {}\n", fmt_span(*steer)));
            out.push_str(&format!("jitter_ns = {}\n", fmt_span(*jitter)));
            // The design-point knobs carry their own key names, so a
            // disabled (`model = "off"`) section still round-trips the
            // chosen kind: `pipeline_ns`/`per_word_ns` imply nanoPU.
            match nic {
                NicModelKind::Dma(DmaNic { desc_fetch, dma_per_kb, doorbell, coupling }) => {
                    out.push_str(&format!("desc_fetch_ns = {}\n", fmt_span(*desc_fetch)));
                    out.push_str(&format!("dma_per_kb_ns = {}\n", fmt_span(*dma_per_kb)));
                    out.push_str(&format!("doorbell_ns = {}\n", fmt_span(*doorbell)));
                    out.push_str(&format!("coupling = {}\n", fmt_f64(*coupling)));
                }
                NicModelKind::Nano(NanoNic { pipeline, per_word }) => {
                    out.push_str(&format!("pipeline_ns = {}\n", fmt_span(*pipeline)));
                    out.push_str(&format!("per_word_ns = {}\n", fmt_span(*per_word)));
                }
            }
        }

        if *tiers != TierSpec::default() {
            out.push_str("\n[tiers]\n");
            let TierSpec { topology, front_overhead, reply_overhead } = tiers;
            out.push_str(&format!("topology = \"{}\"\n", topology.name()));
            if let TierTopology::FanOut { width } = topology {
                out.push_str(&format!("fanout = {width}\n"));
            }
            out.push_str(&format!("front_overhead_ns = {}\n", fmt_span(*front_overhead)));
            out.push_str(&format!("reply_overhead_ns = {}\n", fmt_span(*reply_overhead)));
        }

        if let Some(ExpectSpec {
            verdict,
            slo_pass,
            knee_at_least,
            critical_tier,
            critical_share_at_least,
        }) = expect
        {
            out.push_str("\n[expect]\n");
            if let Some(v) = verdict {
                out.push_str(&format!("verdict = {}\n", toml_str(v)));
            }
            if let Some(pass) = slo_pass {
                out.push_str(&format!("slo = \"{}\"\n", if *pass { "pass" } else { "fail" }));
            }
            if let Some(k) = knee_at_least {
                out.push_str(&format!("knee_at_least = {}\n", fmt_f64(*k)));
            }
            if let Some(t) = critical_tier {
                out.push_str(&format!("critical_tier = {}\n", toml_str(t)));
            }
            if let Some(s) = critical_share_at_least {
                out.push_str(&format!("critical_share_at_least = {}\n", fmt_f64(*s)));
            }
        }

        if let Some(MatrixSpec { policies, plans, rates, retry_pair }) = matrix {
            out.push_str("\n[matrix]\n");
            let names: Vec<String> = policies
                .iter()
                .map(|p| format!("\"{}\"", policy_string(p)))
                .collect();
            out.push_str(&format!("policies = [{}]\n", names.join(", ")));
            let rates: Vec<String> = rates.iter().map(|r| r.to_string()).collect();
            out.push_str(&format!("rates = [{}]\n", rates.join(", ")));
            out.push_str(&format!("retry_pair = {retry_pair}\n"));
            for (name, plan) in plans {
                out.push_str("\n[[matrix.plans]]\n");
                out.push_str(&format!("name = {}\n", toml_str(name)));
                write_faults(&mut out, plan);
            }
        }
        out
    }
}

/// Formats a float so it re-parses as a float (never as an integer) and
/// round-trips exactly.
fn fmt_f64(x: f64) -> String {
    if x.is_finite() && x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// Serializes a span as fractional nanoseconds (exact for any ps value the
/// simulator can represent).
fn fmt_span(s: Span) -> String {
    fmt_f64(s.as_ns_f64())
}

fn toml_str(s: &str) -> String {
    format!("\"{}\"", s.replace('"', "'"))
}

/// Converts a `_ns` number into a span, rejecting negatives.
fn span_ns(r: &Reader<'_>, field: &str, ns: f64) -> Result<Span, ScenarioError> {
    if !ns.is_finite() || ns < 0.0 {
        return Err(r.field_err(field, format!("{ns} must be a non-negative duration")));
    }
    Ok(Span::from_ns_f64(ns))
}

fn parse_traffic(t: &Table) -> Result<(ArrivalProcess, Option<usize>), ScenarioError> {
    let mut r = Reader::new(t, "traffic");
    let requests = r.u64_opt("requests")?.map(|n| n as usize);
    let kind = r.str_opt("arrival")?.unwrap_or_else(|| "poisson".into());
    let arrival = match kind.as_str() {
        "poisson" => ArrivalProcess::Poisson { rate_rps: r.f64_opt("rate_rps")?.unwrap_or(1.0) },
        "onoff" => {
            let rate_rps = r.f64_opt("rate_rps")?.unwrap_or(1.0);
            let on_ns = r.f64_opt("on_ns")?.unwrap_or(0.0);
            let off_ns = r.f64_opt("off_ns")?.unwrap_or(0.0);
            ArrivalProcess::OnOff {
                rate_rps,
                on: span_ns(&r, "on_ns", on_ns)?,
                off: span_ns(&r, "off_ns", off_ns)?,
            }
        }
        "ramp" => {
            let start_rps = r.f64_opt("start_rps")?.unwrap_or(1.0);
            let end_rps = r.f64_opt("end_rps")?.unwrap_or(start_rps);
            let over_ns = r.f64_opt("over_ns")?.unwrap_or(0.0);
            ArrivalProcess::Ramp { start_rps, end_rps, over: span_ns(&r, "over_ns", over_ns)? }
        }
        "diurnal" => {
            let base_rps = r.f64_opt("base_rps")?.unwrap_or(1.0);
            let amplitude = r.f64_opt("amplitude")?.unwrap_or(0.0);
            let period_ns = r.f64_opt("period_ns")?.unwrap_or(0.0);
            ArrivalProcess::Diurnal {
                base_rps,
                amplitude,
                period: span_ns(&r, "period_ns", period_ns)?,
            }
        }
        "flashcrowd" => {
            let base_rps = r.f64_opt("base_rps")?.unwrap_or(1.0);
            let spike_rps = r.f64_opt("spike_rps")?.unwrap_or(base_rps);
            let at_ns = r.f64_opt("at_ns")?.unwrap_or(0.0);
            let rise_ns = r.f64_opt("rise_ns")?.unwrap_or(0.0);
            let hold_ns = r.f64_opt("hold_ns")?.unwrap_or(0.0);
            let fall_ns = r.f64_opt("fall_ns")?.unwrap_or(0.0);
            ArrivalProcess::FlashCrowd {
                base_rps,
                spike_rps,
                at: span_ns(&r, "at_ns", at_ns)?,
                rise: span_ns(&r, "rise_ns", rise_ns)?,
                hold: span_ns(&r, "hold_ns", hold_ns)?,
                fall: span_ns(&r, "fall_ns", fall_ns)?,
            }
        }
        "bursts" => {
            let base_rps = r.f64_opt("base_rps")?.unwrap_or(1.0);
            let burst_rps = r.f64_opt("burst_rps")?.unwrap_or(base_rps);
            let period_ns = r.f64_opt("period_ns")?.unwrap_or(0.0);
            let burst_len_ns = r.f64_opt("burst_len_ns")?.unwrap_or(0.0);
            ArrivalProcess::Bursts {
                base_rps,
                burst_rps,
                period: span_ns(&r, "period_ns", period_ns)?,
                burst_len: span_ns(&r, "burst_len_ns", burst_len_ns)?,
            }
        }
        "closedloop" => {
            let users = r.u64_opt("users")?.unwrap_or(1) as usize;
            let think_ns = r.f64_opt("think_ns")?.unwrap_or(0.0);
            ArrivalProcess::ClosedLoop { users, think: span_ns(&r, "think_ns", think_ns)? }
        }
        other => {
            return Err(r.field_err(
                "arrival",
                format!(
                    "unknown arrival `{other}` (poisson | onoff | ramp | diurnal | flashcrowd \
                     | bursts | closedloop)"
                ),
            ));
        }
    };
    r.finish()?;
    Ok((arrival, requests))
}

fn parse_keys(t: &Table) -> Result<KeyPopularity, ScenarioError> {
    let mut r = Reader::new(t, "keys");
    let kind = r.str_opt("popularity")?.unwrap_or_else(|| "sequential".into());
    let keys = match kind.as_str() {
        "sequential" => KeyPopularity::Sequential,
        "zipfian" => KeyPopularity::Zipfian { theta: r.f64_opt("theta")?.unwrap_or(0.9) },
        "hotset" => KeyPopularity::HotSet {
            hot_fraction: r.f64_opt("hot_fraction")?.unwrap_or(0.1),
            hot_weight: r.f64_opt("hot_weight")?.unwrap_or(0.9),
        },
        other => {
            return Err(r.field_err(
                "popularity",
                format!("unknown popularity `{other}` (sequential | zipfian | hotset)"),
            ));
        }
    };
    r.finish()?;
    Ok(keys)
}

fn parse_service(t: &Table) -> Result<ServiceSpec, ScenarioError> {
    let mut r = Reader::new(t, "service");
    let kind = r.str_opt("kind")?.unwrap_or_else(|| "echo".into());
    let service = match kind.as_str() {
        "echo" => ServiceSpec::Echo { lines: r.u64_opt("lines")?.unwrap_or(4096) },
        "memcached" => ServiceSpec::Memcached {
            n_items: r.u64_opt("n_items")?.unwrap_or(50_000),
            value_lines: r.u64_opt("value_lines")?.unwrap_or(4),
            work_count: r.u64_opt("work_count")?.unwrap_or(100) as u32,
        },
        "bloom" => ServiceSpec::Bloom {
            n_keys: r.u64_opt("n_keys")?.unwrap_or(100_000),
            k: r.u64_opt("k")?.unwrap_or(4),
            work_count: r.u64_opt("work_count")?.unwrap_or(100) as u32,
        },
        other => {
            return Err(
                r.field_err("kind", format!("unknown service `{other}` (echo | memcached | bloom)"))
            );
        }
    };
    r.finish()?;
    Ok(service)
}

fn parse_platform(t: &Table) -> Result<PlatformSpec, ScenarioError> {
    let mut r = Reader::new(t, "platform");
    let mut p = PlatformSpec::default();
    if let Some(m) = r.str_opt("mechanism")? {
        p.mechanism = Some(match m.as_str() {
            "ondemand" => Mechanism::OnDemand,
            "prefetch" => Mechanism::Prefetch,
            "swq" => Mechanism::SoftwareQueue,
            other => {
                return Err(r.field_err(
                    "mechanism",
                    format!("unknown mechanism `{other}` (ondemand | prefetch | swq)"),
                ));
            }
        });
    }
    p.cores = r.u64_opt("cores")?.map(|n| n as usize);
    p.fibers_per_core = r.u64_opt("fibers_per_core")?.map(|n| n as usize);
    p.smt = r.u64_opt("smt")?.map(|n| n as usize);
    if let Some(ns) = r.f64_opt("device_latency_ns")? {
        p.device_latency = Some(span_ns(&r, "device_latency_ns", ns)?);
    }
    if let Some(ns) = r.f64_opt("device_jitter_ns")? {
        p.device_jitter = Some(span_ns(&r, "device_jitter_ns", ns)?);
    }
    if let Some(m) = r.str_opt("jitter_model")? {
        p.jitter_model = Some(match m.as_str() {
            "uniform" => JitterModel::Uniform,
            "bimodal" => {
                let tail_prob = r.f64_opt("jitter_tail_prob")?.unwrap_or(0.0);
                let tail_ns = r.f64_opt("jitter_tail_ns")?.unwrap_or(0.0);
                JitterModel::Bimodal { tail_prob, tail: span_ns(&r, "jitter_tail_ns", tail_ns)? }
            }
            other => {
                return Err(r.field_err(
                    "jitter_model",
                    format!("unknown jitter model `{other}` (uniform | bimodal)"),
                ));
            }
        });
    }
    if let Some(ns) = r.f64_opt("ctx_switch_ns")? {
        p.ctx_switch = Some(span_ns(&r, "ctx_switch_ns", ns)?);
    }
    p.use_replay_device = r.bool_opt("use_replay_device")?;
    p.dataset_bytes = r.u64_opt("dataset_bytes")?;
    p.swq_ring_capacity = r.u64_opt("swq_ring_capacity")?.map(|n| n as usize);
    r.finish()?;
    Ok(p)
}

fn parse_slo(t: &Table) -> Result<SloSpec, ScenarioError> {
    let mut r = Reader::new(t, "slo");
    let mut slo = SloSpec::none();
    if let Some(ns) = r.f64_opt("p99_ns")? {
        slo = slo.p99(span_ns(&r, "p99_ns", ns)?);
    }
    if let Some(ns) = r.f64_opt("p999_ns")? {
        slo = slo.p999(span_ns(&r, "p999_ns", ns)?);
    }
    if let Some(x) = r.f64_opt("max_shed_fraction")? {
        slo = slo.max_shed_fraction(x);
    }
    r.finish()?;
    Ok(slo)
}

/// Parses an admission policy from a table carrying `policy` plus optional
/// parameters. Parameter defaults match `figures`' historical `--policy`
/// shorthands (deadline: 2 µs target / 5 µs interval; adaptive: 4/16/16).
fn parse_admission(t: &Table, section: &str) -> Result<AdmissionControl, ScenarioError> {
    let mut r = Reader::new(t, section);
    let kind = r.str_opt("policy")?.unwrap_or_else(|| "static".into());
    let policy = match kind.as_str() {
        "static" => AdmissionControl::Static,
        "deadline" => {
            let target_ns = r.f64_opt("target_ns")?.unwrap_or(2_000.0);
            let interval_ns = r.f64_opt("interval_ns")?.unwrap_or(5_000.0);
            AdmissionControl::DeadlineAware {
                target: span_ns(&r, "target_ns", target_ns)?,
                interval: span_ns(&r, "interval_ns", interval_ns)?,
            }
        }
        "adaptive" => AdmissionControl::AdaptiveConcurrency {
            initial: r.u64_opt("initial")?.unwrap_or(4) as usize,
            max: r.u64_opt("max")?.unwrap_or(16) as usize,
            window: r.u64_opt("window")?.unwrap_or(16) as usize,
        },
        other => {
            return Err(r.field_err(
                "policy",
                format!("unknown policy `{other}` (static | deadline | adaptive)"),
            ));
        }
    };
    r.finish()?;
    Ok(policy)
}

/// The string a default-parameter policy serializes to (the shorthand
/// spelling `parse_admission` reads back).
fn policy_string(p: &AdmissionControl) -> String {
    match p {
        AdmissionControl::Static => "static".into(),
        AdmissionControl::DeadlineAware { .. } => "deadline".into(),
        AdmissionControl::AdaptiveConcurrency { .. } => "adaptive".into(),
    }
}

fn write_admission(out: &mut String, p: &AdmissionControl) {
    match *p {
        AdmissionControl::Static => out.push_str("policy = \"static\"\n"),
        AdmissionControl::DeadlineAware { target, interval } => {
            out.push_str("policy = \"deadline\"\n");
            out.push_str(&format!("target_ns = {}\n", fmt_span(target)));
            out.push_str(&format!("interval_ns = {}\n", fmt_span(interval)));
        }
        AdmissionControl::AdaptiveConcurrency { initial, max, window } => {
            out.push_str("policy = \"adaptive\"\n");
            out.push_str(&format!("initial = {initial}\n"));
            out.push_str(&format!("max = {max}\n"));
            out.push_str(&format!("window = {window}\n"));
        }
    }
}

fn parse_retry(t: &Table) -> Result<RetryPolicy, ScenarioError> {
    let mut r = Reader::new(t, "retry");
    let mut policy = RetryPolicy::none();
    if let Some(ns) = r.f64_opt("timeout_ns")? {
        policy.timeout = Some(span_ns(&r, "timeout_ns", ns)?);
    }
    if let Some(n) = r.u64_opt("max_attempts")? {
        policy.max_attempts = n as u32;
    }
    policy.budget = r.f64_opt("budget")?;
    if let Some(ns) = r.f64_opt("backoff_ns")? {
        policy.backoff = span_ns(&r, "backoff_ns", ns)?;
    }
    policy.hedge_quantile = r.f64_opt("hedge_quantile")?;
    r.finish()?;
    Ok(policy)
}

/// Parses a [`FaultPlan`] from a table using the same `_ns`-suffixed key
/// names as [`FaultPlan::parse_toml`]. Also used for `[[matrix.plans]]`
/// entries, where the keys sit next to the plan `name`.
fn parse_faults(t: &Table, section: &str) -> Result<FaultPlan, ScenarioError> {
    let mut r = Reader::new(t, section);
    let plan = parse_faults_fields(&mut r)?;
    r.finish()?;
    Ok(plan)
}

/// Reads the fault-plan keys off an existing reader without finishing it.
fn parse_faults_fields(r: &mut Reader<'_>) -> Result<FaultPlan, ScenarioError> {
    let mut p = FaultPlan::none();
    if let Some(x) = r.f64_opt("latency_spike_prob")? {
        p.latency_spike_prob = x;
    }
    if let Some(ns) = r.f64_opt("latency_spike_ns")? {
        p.latency_spike = span_ns(r, "latency_spike_ns", ns)?;
    }
    if let Some(x) = r.f64_opt("stall_prob")? {
        p.stall_prob = x;
    }
    if let Some(x) = r.f64_opt("drop_completion_prob")? {
        p.drop_completion_prob = x;
    }
    if let Some(x) = r.f64_opt("dup_completion_prob")? {
        p.dup_completion_prob = x;
    }
    if let Some(x) = r.f64_opt("drop_doorbell_prob")? {
        p.drop_doorbell_prob = x;
    }
    if let Some(x) = r.f64_opt("tlp_replay_prob")? {
        p.tlp_replay_prob = x;
    }
    if let Some(x) = r.f64_opt("fiber_crash_prob")? {
        p.fiber_crash_prob = x;
    }
    if let Some(ns) = r.f64_opt("fiber_respawn_ns")? {
        p.fiber_respawn = span_ns(r, "fiber_respawn_ns", ns)?;
    }
    if let Some(x) = r.f64_opt("dispatcher_stall_prob")? {
        p.dispatcher_stall_prob = x;
    }
    if let Some(ns) = r.f64_opt("dispatcher_stall_ns")? {
        p.dispatcher_stall = span_ns(r, "dispatcher_stall_ns", ns)?;
    }
    if let Some(ns) = r.f64_opt("freeze_period_ns")? {
        p.freeze_period = span_ns(r, "freeze_period_ns", ns)?;
    }
    if let Some(ns) = r.f64_opt("freeze_len_ns")? {
        p.freeze_len = span_ns(r, "freeze_len_ns", ns)?;
    }
    if let Some(ns) = r.f64_opt("freeze_stall_ns")? {
        p.freeze_stall = span_ns(r, "freeze_stall_ns", ns)?;
    }
    Ok(p)
}

/// Writes a fault plan's non-default fields with the schema's key names.
/// Exhaustive destructuring keeps this in sync with [`FaultPlan`].
fn write_faults(out: &mut String, p: &FaultPlan) {
    let FaultPlan {
        latency_spike_prob,
        latency_spike,
        stall_prob,
        drop_completion_prob,
        dup_completion_prob,
        drop_doorbell_prob,
        tlp_replay_prob,
        fiber_crash_prob,
        fiber_respawn,
        dispatcher_stall_prob,
        dispatcher_stall,
        freeze_period,
        freeze_len,
        freeze_stall,
    } = *p;
    let probs = [
        ("latency_spike_prob", latency_spike_prob),
        ("stall_prob", stall_prob),
        ("drop_completion_prob", drop_completion_prob),
        ("dup_completion_prob", dup_completion_prob),
        ("drop_doorbell_prob", drop_doorbell_prob),
        ("tlp_replay_prob", tlp_replay_prob),
        ("fiber_crash_prob", fiber_crash_prob),
        ("dispatcher_stall_prob", dispatcher_stall_prob),
    ];
    for (key, x) in probs {
        if x != 0.0 {
            out.push_str(&format!("{key} = {}\n", fmt_f64(x)));
        }
    }
    let spans = [
        ("latency_spike_ns", latency_spike),
        ("fiber_respawn_ns", fiber_respawn),
        ("dispatcher_stall_ns", dispatcher_stall),
        ("freeze_period_ns", freeze_period),
        ("freeze_len_ns", freeze_len),
        ("freeze_stall_ns", freeze_stall),
    ];
    for (key, s) in spans {
        if !s.is_zero() {
            out.push_str(&format!("{key} = {}\n", fmt_span(s)));
        }
    }
}

fn parse_net(t: &Table) -> Result<NetConfig, ScenarioError> {
    let mut r = Reader::new(t, "net");
    let mut net = NetConfig::default();
    let model = r.str_opt("model")?.unwrap_or_else(|| "off".into());
    if let Some(n) = r.u64_opt("rx_queues")? {
        net.rx_queues = n as u32;
    }
    if let Some(n) = r.u64_opt("flows")? {
        net.flows = n as u32;
    }
    if let Some(n) = r.u64_opt("request_bytes")? {
        net.request_bytes = n;
    }
    if let Some(n) = r.u64_opt("response_bytes")? {
        net.response_bytes = n;
    }
    if let Some(x) = r.f64_opt("link_gbps")? {
        net.link_gbps = x;
    }
    if let Some(ns) = r.f64_opt("proto_ns")? {
        net.proto = span_ns(&r, "proto_ns", ns)?;
    }
    if let Some(ns) = r.f64_opt("steer_ns")? {
        net.steer = span_ns(&r, "steer_ns", ns)?;
    }
    if let Some(ns) = r.f64_opt("jitter_ns")? {
        net.jitter = span_ns(&r, "jitter_ns", ns)?;
    }
    // Design-point knobs; which set appears also infers the kind for a
    // `model = "off"` section, so disabled worlds still round-trip.
    let mut dma = DmaNic::default();
    if let Some(ns) = r.f64_opt("desc_fetch_ns")? {
        dma.desc_fetch = span_ns(&r, "desc_fetch_ns", ns)?;
    }
    if let Some(ns) = r.f64_opt("dma_per_kb_ns")? {
        dma.dma_per_kb = span_ns(&r, "dma_per_kb_ns", ns)?;
    }
    if let Some(ns) = r.f64_opt("doorbell_ns")? {
        dma.doorbell = span_ns(&r, "doorbell_ns", ns)?;
    }
    if let Some(x) = r.f64_opt("coupling")? {
        dma.coupling = x;
    }
    let mut nano = NanoNic::default();
    let mut nano_knobs = false;
    if let Some(ns) = r.f64_opt("pipeline_ns")? {
        nano.pipeline = span_ns(&r, "pipeline_ns", ns)?;
        nano_knobs = true;
    }
    if let Some(ns) = r.f64_opt("per_word_ns")? {
        nano.per_word = span_ns(&r, "per_word_ns", ns)?;
        nano_knobs = true;
    }
    match model.as_str() {
        "off" => {
            net.enabled = false;
            net.nic = if nano_knobs { NicModelKind::Nano(nano) } else { NicModelKind::Dma(dma) };
        }
        "dma" => {
            net.enabled = true;
            net.nic = NicModelKind::Dma(dma);
        }
        "nanopu" => {
            net.enabled = true;
            net.nic = NicModelKind::Nano(nano);
        }
        other => {
            return Err(r.field_err("model", format!("unknown model '{other}' (off | dma | nanopu)")))
        }
    }
    r.finish()?;
    Ok(net)
}

fn parse_tiers(t: &Table) -> Result<TierSpec, ScenarioError> {
    let mut r = Reader::new(t, "tiers");
    let mut tiers = TierSpec::default();
    let topology = r.str_opt("topology")?.unwrap_or_else(|| "direct".into());
    let fanout = r.u64_opt("fanout")?;
    tiers.topology = match topology.as_str() {
        "direct" => TierTopology::Direct,
        "rpc" => TierTopology::Rpc,
        "fanout" => TierTopology::FanOut { width: fanout.unwrap_or(4) as u32 },
        other => {
            return Err(
                r.field_err("topology", format!("unknown topology '{other}' (direct | rpc | fanout)"))
            )
        }
    };
    if fanout.is_some() && !matches!(tiers.topology, TierTopology::FanOut { .. }) {
        return Err(r.field_err("fanout", "fanout width only applies to topology = \"fanout\""));
    }
    if let Some(ns) = r.f64_opt("front_overhead_ns")? {
        tiers.front_overhead = span_ns(&r, "front_overhead_ns", ns)?;
    }
    if let Some(ns) = r.f64_opt("reply_overhead_ns")? {
        tiers.reply_overhead = span_ns(&r, "reply_overhead_ns", ns)?;
    }
    r.finish()?;
    Ok(tiers)
}

fn parse_expect(t: &Table) -> Result<ExpectSpec, ScenarioError> {
    let mut r = Reader::new(t, "expect");
    let mut expect = ExpectSpec { verdict: r.str_opt("verdict")?, ..ExpectSpec::default() };
    if let Some(s) = r.str_opt("slo")? {
        expect.slo_pass = match s.as_str() {
            "pass" => Some(true),
            "fail" => Some(false),
            other => {
                return Err(r.field_err("slo", format!("unknown slo outcome '{other}' (pass | fail)")))
            }
        };
    }
    expect.knee_at_least = r.rate_opt("knee_at_least")?;
    expect.critical_tier = r.str_opt("critical_tier")?;
    expect.critical_share_at_least = r.f64_opt("critical_share_at_least")?;
    r.finish()?;
    Ok(expect)
}

fn parse_matrix(t: &Table) -> Result<MatrixSpec, ScenarioError> {
    let mut r = Reader::new(t, "matrix");
    let mut m = MatrixSpec::default();
    if let Some(names) = r.str_array_opt("policies")? {
        let mut policies = Vec::with_capacity(names.len());
        for name in &names {
            policies.push(match name.as_str() {
                "static" => AdmissionControl::Static,
                "deadline" => AdmissionControl::DeadlineAware {
                    target: Span::from_us(2),
                    interval: Span::from_us(5),
                },
                "adaptive" => {
                    AdmissionControl::AdaptiveConcurrency { initial: 4, max: 16, window: 16 }
                }
                other => {
                    return Err(r.field_err(
                        "policies",
                        format!("unknown policy `{other}` (static | deadline | adaptive)"),
                    ));
                }
            });
        }
        m.policies = policies;
    }
    if let Some(rates) = r.u64_array_opt("rates")? {
        m.rates = rates;
    }
    if let Some(b) = r.bool_opt("retry_pair")? {
        m.retry_pair = b;
    }
    if let Some(tables) = r.tables_opt("plans")? {
        let mut plans = Vec::with_capacity(tables.len());
        for (i, pt) in tables.iter().enumerate() {
            let section = format!("matrix.plans[{i}]");
            let mut pr = Reader::new(pt, section.clone());
            let Some(name) = pr.str_opt("name")? else {
                return Err(ScenarioError::msg(format!("`{section}` needs a `name`")));
            };
            let plan = parse_faults_fields(&mut pr)?;
            pr.finish()?;
            plans.push((name, plan));
        }
        m.plans = plans;
    }
    r.finish()?;
    Ok(m)
}
