//! [`Scenario`]: the compiled, immutable form of a [`ScenarioSpec`].
//!
//! Compilation is where every facet is validated — arrivals, key skew,
//! service sizing, queueing, admission, retry, faults, the platform — with
//! section-attributed diagnostics, and where the spec is frozen into the
//! exact [`LoadSpec`] + [`PlatformConfig`] pair the runners consume. A
//! compiled scenario carries a deterministic fingerprint (FNV-1a, the same
//! construction as [`Experiment::fingerprint`]) so equal worlds are
//! recognizably equal regardless of whether they came from TOML or the
//! builder API.

use kus_core::prelude::{ConfigError, Experiment, PlatformConfig};
use kus_load::{load_experiment, service_factory, EchoService, LoadSpec, ServiceFactory};
use kus_workloads::{BloomConfig, BloomService, MemcachedConfig, MemcachedService};

use crate::error::ScenarioError;
use crate::spec::{MatrixSpec, ScenarioSpec, ServiceSpec};

/// A validated, frozen scenario: the spec it came from plus the compiled
/// load spec, platform config, and identity fingerprint.
#[derive(Debug, Clone)]
pub struct Scenario {
    spec: ScenarioSpec,
    load: LoadSpec,
    cfg: PlatformConfig,
    fingerprint: u64,
}

/// Attributes a facet's `Result<(), String>` validation to a section.
fn facet(section: &'static str, r: Result<(), String>) -> Result<(), ScenarioError> {
    r.map_err(|message| ScenarioError { section: section.into(), field: None, line: None, message })
}

impl Scenario {
    /// Validates and freezes `spec`. Every error names the schema section
    /// it belongs to; nothing panics on bad input.
    pub fn compile(spec: ScenarioSpec) -> Result<Scenario, ScenarioError> {
        if spec.name.is_empty() {
            return Err(ScenarioError::msg("scenario name must not be empty"));
        }
        facet("traffic", spec.arrival.validate())?;
        if spec.requests == 0 {
            return Err(ScenarioError {
                section: "traffic".into(),
                field: Some("requests".into()),
                line: None,
                message: "at least one request is required".into(),
            });
        }
        facet("keys", spec.keys.validate())?;
        let (sized_field, size) = match spec.service {
            ServiceSpec::Echo { lines } => ("lines", lines),
            ServiceSpec::Memcached { n_items, .. } => ("n_items", n_items),
            ServiceSpec::Bloom { n_keys, .. } => ("n_keys", n_keys),
        };
        if size == 0 {
            return Err(ScenarioError {
                section: "service".into(),
                field: Some(sized_field.into()),
                line: None,
                message: "the service needs at least one key".into(),
            });
        }
        if spec.queue_capacity == 0 {
            return Err(ScenarioError {
                section: "queue".into(),
                field: Some("capacity".into()),
                line: None,
                message: "queue capacity must be at least 1".into(),
            });
        }
        facet("admission", spec.admission.validate())?;
        facet("retry", spec.retry.validate())?;
        facet("faults", spec.faults.validate())?;
        facet("net", spec.net.validate())?;
        facet("tiers", spec.tiers.validate())?;
        if spec.net.enabled && !spec.arrival.is_open_loop() {
            return Err(ScenarioError {
                section: "net".into(),
                field: Some("model".into()),
                line: None,
                message: "the NIC front end needs open-loop wire arrivals".into(),
            });
        }
        if let Some(e) = &spec.expect {
            facet("expect", e.validate())?;
            if spec.matrix.is_some() {
                return Err(ScenarioError {
                    section: "expect".into(),
                    field: None,
                    line: None,
                    message: "[expect] judges the single-cell run; it cannot be combined \
                         with a [matrix] section"
                        .into(),
                });
            }
        }
        if let Some(m) = &spec.matrix {
            for (i, p) in m.policies.iter().enumerate() {
                facet("matrix", p.validate()).map_err(|mut e| {
                    e.field = Some(format!("policies[{i}]"));
                    e
                })?;
            }
            for (i, (name, plan)) in m.plans.iter().enumerate() {
                if name.is_empty() {
                    return Err(ScenarioError {
                        section: format!("matrix.plans[{i}]"),
                        field: Some("name".into()),
                        line: None,
                        message: "plan name must not be empty".into(),
                    });
                }
                facet("matrix", plan.validate()).map_err(|mut e| {
                    e.section = format!("matrix.plans[{i}]");
                    e
                })?;
            }
            if m.policies.is_empty() || m.plans.is_empty() || m.rates.is_empty() {
                return Err(ScenarioError {
                    section: "matrix".into(),
                    field: None,
                    line: None,
                    message: "matrix axes must all be non-empty".into(),
                });
            }
        }

        let mut cfg = PlatformConfig::paper_default();
        let p = &spec.platform;
        if let Some(m) = p.mechanism {
            cfg = cfg.mechanism(m);
        }
        if let Some(n) = p.cores {
            cfg = cfg.cores(n);
        }
        if let Some(n) = p.fibers_per_core {
            cfg = cfg.fibers_per_core(n);
        }
        if let Some(n) = p.smt {
            cfg = cfg.smt(n);
        }
        if let Some(s) = p.device_latency {
            cfg = cfg.device_latency(s);
        }
        if let Some(s) = p.device_jitter {
            cfg = cfg.device_jitter(s);
        }
        if let Some(m) = p.jitter_model {
            cfg = cfg.device_jitter_model(m);
        }
        if let Some(s) = p.ctx_switch {
            cfg = cfg.ctx_switch(s);
        }
        if let Some(b) = p.use_replay_device {
            cfg = cfg.use_replay_device(b);
        }
        if let Some(n) = p.dataset_bytes {
            cfg = cfg.dataset_bytes(n);
        }
        if let Some(n) = p.swq_ring_capacity {
            cfg = cfg.swq_ring_capacity(n);
        }
        if let Some(seed) = spec.seed {
            cfg = cfg.seed(seed);
        }
        // Blame-bearing claims need the causal event class: the fan-out
        // join can only resolve to a critical child when the per-child
        // `rpc.hop` spans exist in the trace.
        if spec.expect.as_ref().is_some_and(|e| e.wants_blame()) {
            cfg = cfg.causal();
        }
        cfg.validate().map_err(|e: ConfigError| ScenarioError {
            section: "platform".into(),
            field: None,
            line: None,
            message: e.to_string(),
        })?;

        let load = LoadSpec {
            arrival: spec.arrival,
            requests: spec.requests,
            queue_capacity: spec.queue_capacity,
            dispatch_overhead: spec.dispatch_overhead,
            slo: spec.slo,
            admission: spec.admission,
            retry: spec.retry,
            faults: spec.faults,
            net: spec.net,
            tiers: spec.tiers,
        };

        let fingerprint = fingerprint_of(&spec, &cfg, &load);
        Ok(Scenario { spec, load, cfg, fingerprint })
    }

    /// Parses and compiles TOML text in one step.
    pub fn from_toml(text: &str) -> Result<Scenario, ScenarioError> {
        Scenario::compile(ScenarioSpec::parse(text)?)
    }

    /// The scenario's name (labels cells and artifacts).
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// The spec this scenario was compiled from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The compiled load spec (`run_cells`/`figures` consume this).
    pub fn load(&self) -> LoadSpec {
        self.load
    }

    /// The compiled platform configuration.
    pub fn cfg(&self) -> &PlatformConfig {
        &self.cfg
    }

    /// The overload matrix, when the scenario carries one.
    pub fn matrix(&self) -> Option<&MatrixSpec> {
        self.spec.matrix.as_ref()
    }

    /// The outcome expectations, when the scenario carries any.
    pub fn expect(&self) -> Option<&crate::spec::ExpectSpec> {
        self.spec.expect.as_ref()
    }

    /// The deterministic identity fingerprint: FNV-1a over the name and
    /// the canonical (`Debug`) renderings of the spec, platform, and load
    /// spec. Equal fingerprints mean byte-identical worlds.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The service's short name (`echo` / `memcached` / `bloom`).
    pub fn service_name(&self) -> &'static str {
        self.spec.service.name()
    }

    /// A factory for the compiled service, with the scenario's key
    /// popularity injected.
    pub fn service(&self) -> ServiceFactory {
        let keys = self.spec.keys;
        match self.spec.service {
            ServiceSpec::Echo { lines } => {
                service_factory(move || EchoService::new(lines).popularity(keys))
            }
            ServiceSpec::Memcached { n_items, value_lines, work_count } => {
                MemcachedService::factory(MemcachedConfig {
                    n_items,
                    value_lines,
                    work_count,
                    popularity: keys,
                    ..MemcachedConfig::default()
                })
            }
            ServiceSpec::Bloom { n_keys, k, work_count } => BloomService::factory(BloomConfig {
                n_keys,
                k,
                work_count,
                popularity: keys,
                ..BloomConfig::default()
            }),
        }
    }

    /// A single-cell serving experiment for this scenario (matrix
    /// scenarios also run standalone with their base fault plan).
    pub fn experiment(&self) -> Result<Experiment, ScenarioError> {
        load_experiment(self.spec.name.clone(), self.load, self.cfg.clone(), self.service())
            .map_err(|e| ScenarioError {
                section: String::new(),
                field: None,
                line: None,
                message: e.to_string(),
            })
    }
}

impl ScenarioSpec {
    /// Compiles this spec — shorthand for [`Scenario::compile`].
    pub fn compile(self) -> Result<Scenario, ScenarioError> {
        Scenario::compile(self)
    }
}

fn fingerprint_of(spec: &ScenarioSpec, cfg: &PlatformConfig, load: &LoadSpec) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(spec.name.as_bytes());
    eat(&[0xff]);
    eat(format!("{spec:?}").as_bytes());
    eat(&[0xff]);
    eat(format!("{cfg:?}").as_bytes());
    eat(&[0xff]);
    eat(format!("{load:?}").as_bytes());
    h
}

#[cfg(test)]
mod tests {
    use kus_core::prelude::Mechanism;
    use kus_load::{ArrivalProcess, KeyPopularity};

    use super::*;
    use crate::spec::PlatformSpec;

    fn calm() -> ScenarioSpec {
        ScenarioSpec::new("calm", ArrivalProcess::Poisson { rate_rps: 1.0 })
    }

    #[test]
    fn empty_scenario_compiles_to_todays_defaults() {
        let sc = calm().compile().expect("compiles");
        let reference = LoadSpec::new(ArrivalProcess::Poisson { rate_rps: 1.0 });
        assert_eq!(format!("{:?}", sc.load()), format!("{reference:?}"));
        assert_eq!(
            format!("{:?}", sc.cfg()),
            format!("{:?}", PlatformConfig::paper_default()),
            "an empty platform section must not drift from the paper default"
        );
    }

    #[test]
    fn errors_name_their_section() {
        let e = calm().requests(0).compile().unwrap_err();
        assert_eq!(e.section, "traffic");
        let e = calm().keys(KeyPopularity::Zipfian { theta: 1.5 }).compile().unwrap_err();
        assert_eq!(e.section, "keys");
        let e = calm().queue_capacity(0).compile().unwrap_err();
        assert_eq!(e.section, "queue");
        let mut bad = calm();
        bad.platform = PlatformSpec { cores: Some(0), ..PlatformSpec::default() };
        let e = bad.compile().unwrap_err();
        assert_eq!(e.section, "platform");
    }

    #[test]
    fn fingerprints_separate_distinct_worlds_and_agree_across_sources() {
        let a = calm().compile().expect("compiles");
        let b = calm().compile().expect("compiles");
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut swq = calm();
        swq.platform.mechanism = Some(Mechanism::SoftwareQueue);
        let c = swq.compile().expect("compiles");
        assert_ne!(a.fingerprint(), c.fingerprint());
        let via_toml = Scenario::from_toml(&a.spec().to_toml()).expect("round-trips");
        assert_eq!(a.fingerprint(), via_toml.fingerprint());
    }

    #[test]
    fn matrix_validation_catches_bad_plans() {
        let mut spec = calm();
        let mut m = crate::spec::MatrixSpec::default();
        m.rates.clear();
        spec = spec.matrix(m);
        let e = spec.compile().unwrap_err();
        assert_eq!(e.section, "matrix");
    }

    #[test]
    fn experiments_build_for_every_service() {
        for service in [
            ServiceSpec::Echo { lines: 64 },
            ServiceSpec::Memcached { n_items: 128, value_lines: 2, work_count: 10 },
            ServiceSpec::Bloom { n_keys: 128, k: 2, work_count: 10 },
        ] {
            let sc = calm().service(service).requests(8).compile().expect("compiles");
            sc.experiment().expect("experiment builds");
        }
    }
}
