//! # kus-scenario — declarative worlds for the killer-microsecond simulator
//!
//! One schema composes everything a serving experiment needs — arrival
//! process × key popularity × service × platform × queueing × SLOs ×
//! admission × retry × faults, plus an optional overload matrix — and one
//! two-phase pipeline turns it into something runnable:
//!
//! 1. **Parse** ([`ScenarioSpec::parse`]): TOML text → an unvalidated
//!    spec, with per-field line diagnostics and unknown keys rejected.
//!    The same spec is equally constructible in Rust via
//!    [`ScenarioSpec::new`] and its builders — TOML and the programmatic
//!    API are two front-ends to one type.
//! 2. **Compile** ([`Scenario::compile`]): validate every facet (errors
//!    name their section; no panicking paths, extending the
//!    `PlatformConfig::validate` posture) and freeze an immutable
//!    [`Scenario`] carrying the exact `LoadSpec` + `PlatformConfig` pair
//!    the runners consume, plus an FNV-1a identity fingerprint.
//!
//! A scenario that encodes today's defaults compiles to *exactly* today's
//! experiment — byte-identical artifacts — so the corpus under
//! `scenarios/` is a library of reproducible worlds, not a parallel
//! configuration system.
//!
//! ```
//! use kus_scenario::prelude::*;
//!
//! let sc = Scenario::from_toml(
//!     "name = \"calm\"\n\
//!      [traffic]\n\
//!      arrival = \"poisson\"\n\
//!      rate_rps = 2.0e6\n\
//!      requests = 64\n",
//! )
//! .expect("a valid scenario");
//! assert_eq!(sc.name(), "calm");
//! let report = sc.experiment().expect("builds").run();
//! assert!(!report.elapsed.is_zero());
//! ```
//!
//! Note on crate layering: `kus-scenario` sits *above* `kus-core` (it
//! depends on core, load, and workloads), so core's prelude cannot
//! re-export these types without a dependency cycle. Use
//! [`prelude`](crate::prelude) here instead — it includes everything
//! `kus_core::prelude` has, plus the load-generation and scenario types.

#![warn(missing_docs)]

pub mod error;
pub mod scenario;
pub mod spec;
pub mod toml;

pub use error::ScenarioError;
pub use scenario::Scenario;
pub use spec::{ExpectSpec, MatrixSpec, PlatformSpec, ScenarioSpec, ServiceSpec};

/// Everything needed to describe, compile, and run scenarios: the
/// superset of `kus_core::prelude` (which cannot re-export these types —
/// see the crate docs) plus the load and scenario vocabulary.
pub mod prelude {
    pub use kus_core::prelude::*;
    pub use kus_load::{
        AdmissionControl, ArrivalProcess, KeyPopularity, LoadSpec, NetConfig, NicModelKind,
        RetryPolicy, SloSpec, TierSpec, TierTopology,
    };

    pub use crate::error::ScenarioError;
    pub use crate::scenario::Scenario;
    pub use crate::spec::{ExpectSpec, MatrixSpec, PlatformSpec, ScenarioSpec, ServiceSpec};
}
