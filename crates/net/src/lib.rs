//! # kus-net — modelled NIC and RPC front end
//!
//! Until this crate, every request in the workspace materialized directly at
//! the kus-load dispatcher: the repo answered the killer-microsecond question
//! for one server under synthetic load, with the wire abstracted away. kus-net
//! models the request path *from the wire*: per-packet serialization time on
//! the link, a NIC with parallel RX queues that process packets FIFO, RSS
//! steering of flows to cores by key hash, and protocol-processing cost —
//! all deterministic and all precomputed, so the serving layer replays the
//! delivery schedule without perturbing any existing random stream.
//!
//! Two contrasting hardware design points from the paper's lineage sit behind
//! one [`NicModel`] trait:
//!
//! - [`DmaNic`] — the conventional descriptor-ring path: the NIC fetches a
//!   DMA descriptor, moves the payload over the peripheral interconnect, and
//!   rings a doorbell. The Dagger-style *coupling* knob scales the
//!   interconnect-crossing costs (descriptor fetch + doorbell) from a
//!   discrete PCIe NIC (`coupling = 1.0`) down to a NIC integrated into the
//!   memory subsystem (`coupling = 0.0`).
//! - [`NanoNic`] — a nanoPU-style low-latency fast path: a fixed pipeline
//!   latency plus a tiny per-word cost for register-file delivery, with no
//!   descriptor or doorbell machinery at all.
//!
//! The output of the model is a [`NetTimeline`]: for each request, when it
//! hit the wire, which RX queue and core RSS steered it to, and the
//! wire/NIC-queue/NIC-processing/steering decomposition of its path to the
//! dispatcher. kus-load substitutes the delivered times for raw arrival
//! offsets and emits the decomposition as trace events, so the existing
//! report/profile machinery sees the NIC as just another µs-scale stage.
//!
//! Everything here is off by default: [`NetConfig::default`] has
//! `enabled = false`, and a disabled config is never consulted — existing
//! golden traces are bitwise unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use kus_sim::{SimRng, Span};

/// The per-packet receive-side cost decomposition a NIC model produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketCosts {
    /// Serialization time on the link (bytes over line rate).
    pub wire: Span,
    /// NIC processing occupancy: the RX queue is busy for this long.
    pub nic: Span,
    /// RSS hash + core-notification cost after NIC processing.
    pub steer: Span,
}

/// A receive-path NIC design point: given a packet size, how long does the
/// NIC itself take to deliver it?
///
/// Implementations are *models*, not device drivers: the returned span is
/// the FIFO occupancy of the RX queue that handles the packet. Wire and
/// steering costs are shared across models and live in [`NetConfig`].
pub trait NicModel {
    /// Short stable name used in labels and artifacts (`dma` / `nanopu`).
    fn name(&self) -> &'static str;
    /// NIC processing time for one `bytes`-sized packet.
    fn rx_cost(&self, bytes: u64) -> Span;
}

/// Conventional DMA-descriptor-ring NIC with a Dagger-style coupling knob.
///
/// Receive cost is `coupling × (desc_fetch + doorbell) + dma_per_kb ×
/// bytes/1024`: the descriptor fetch and doorbell are interconnect
/// crossings that an integrated (coupled) NIC avoids, while the payload
/// move scales with packet size regardless of attachment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaNic {
    /// Cost of fetching one RX descriptor across the interconnect.
    pub desc_fetch: Span,
    /// Payload DMA cost per KiB moved.
    pub dma_per_kb: Span,
    /// Completion-doorbell cost across the interconnect.
    pub doorbell: Span,
    /// Interconnect-coupling factor: `1.0` is a discrete PCIe NIC, `0.0`
    /// a NIC fused into the memory subsystem (Dagger's design point).
    pub coupling: f64,
}

impl Default for DmaNic {
    fn default() -> DmaNic {
        DmaNic {
            desc_fetch: Span::from_ns(180),
            dma_per_kb: Span::from_ns(60),
            doorbell: Span::from_ns(80),
            coupling: 1.0,
        }
    }
}

impl NicModel for DmaNic {
    fn name(&self) -> &'static str {
        "dma"
    }

    fn rx_cost(&self, bytes: u64) -> Span {
        let crossings = (self.desc_fetch.as_ps() + self.doorbell.as_ps()) as f64 * self.coupling;
        let dma = self.dma_per_kb.as_ps() as f64 * (bytes as f64 / 1024.0);
        Span::from_ps((crossings + dma).round() as u64)
    }
}

/// nanoPU-style fast path: fixed pipeline latency plus per-word
/// register-file delivery, no descriptors and no doorbells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NanoNic {
    /// Fixed RX pipeline latency per packet.
    pub pipeline: Span,
    /// Delivery cost per 8-byte word.
    pub per_word: Span,
}

impl Default for NanoNic {
    fn default() -> NanoNic {
        NanoNic { pipeline: Span::from_ns(35), per_word: Span::from_ps(600) }
    }
}

impl NicModel for NanoNic {
    fn name(&self) -> &'static str {
        "nanopu"
    }

    fn rx_cost(&self, bytes: u64) -> Span {
        let words = bytes.div_ceil(8);
        Span::from_ps(self.pipeline.as_ps() + self.per_word.as_ps() * words)
    }
}

/// The sweepable choice of NIC design point, carrying its cost knobs.
///
/// `Copy` so it can ride inside `LoadSpec`; [`NicModelKind::model`] turns it
/// into the trait object form when polymorphism is wanted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NicModelKind {
    /// Descriptor-ring baseline ([`DmaNic`]).
    Dma(DmaNic),
    /// Low-latency fast path ([`NanoNic`]).
    Nano(NanoNic),
}

impl NicModelKind {
    /// The DMA baseline with default knobs.
    pub fn dma() -> NicModelKind {
        NicModelKind::Dma(DmaNic::default())
    }

    /// The nanoPU-style fast path with default knobs.
    pub fn nanopu() -> NicModelKind {
        NicModelKind::Nano(NanoNic::default())
    }

    /// The model's short stable name (`dma` / `nanopu`).
    pub fn name(&self) -> &'static str {
        match self {
            NicModelKind::Dma(m) => m.name(),
            NicModelKind::Nano(m) => m.name(),
        }
    }

    /// This design point as a boxed [`NicModel`].
    pub fn model(&self) -> Box<dyn NicModel> {
        match *self {
            NicModelKind::Dma(m) => Box::new(m),
            NicModelKind::Nano(m) => Box::new(m),
        }
    }

    /// NIC processing time for one `bytes`-sized packet (enum dispatch;
    /// equivalent to `self.model().rx_cost(bytes)` without the allocation).
    pub fn rx_cost(&self, bytes: u64) -> Span {
        match self {
            NicModelKind::Dma(m) => m.rx_cost(bytes),
            NicModelKind::Nano(m) => m.rx_cost(bytes),
        }
    }

    fn validate(&self) -> Result<(), String> {
        match self {
            NicModelKind::Dma(m) => {
                if !m.coupling.is_finite() || !(0.0..=8.0).contains(&m.coupling) {
                    return Err(format!(
                        "dma coupling must be a finite factor in [0, 8], got {}",
                        m.coupling
                    ));
                }
            }
            NicModelKind::Nano(_) => {}
        }
        Ok(())
    }
}

impl Default for NicModelKind {
    fn default() -> NicModelKind {
        NicModelKind::dma()
    }
}

/// Full front-end configuration: the NIC design point plus the shared
/// wire/steering/protocol knobs.
///
/// Defaults are **off**: `enabled = false` means the serving layer never
/// consults this struct, draws no random numbers for it, and emits no
/// events — existing traces are bitwise unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Master switch; everything below is inert when false.
    pub enabled: bool,
    /// Which NIC design point handles RX processing.
    pub nic: NicModelKind,
    /// Number of parallel RX queues (each FIFO).
    pub rx_queues: u32,
    /// Number of distinct flows; request `i` belongs to flow `i % flows`.
    pub flows: u32,
    /// Request packet size in bytes (drives wire + NIC costs).
    pub request_bytes: u64,
    /// Response packet size in bytes (drives the TX wire cost report).
    pub response_bytes: u64,
    /// Link line rate in Gbit/s.
    pub link_gbps: f64,
    /// Protocol processing (framing, header parse) added to NIC occupancy.
    pub proto: Span,
    /// RSS hash + core-notification cost after NIC processing.
    pub steer: Span,
    /// Uniform NIC jitter bound: each packet's NIC stage gains
    /// `uniform[0, jitter]`, drawn from a dedicated labelled stream.
    pub jitter: Span,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            enabled: false,
            nic: NicModelKind::default(),
            rx_queues: 4,
            flows: 64,
            request_bytes: 256,
            response_bytes: 256,
            link_gbps: 100.0,
            proto: Span::from_ns(150),
            steer: Span::from_ns(40),
            jitter: Span::ZERO,
        }
    }
}

impl NetConfig {
    /// An enabled config with every other knob at its default.
    pub fn on() -> NetConfig {
        NetConfig { enabled: true, ..NetConfig::default() }
    }

    /// Replaces the NIC design point.
    pub fn nic(mut self, nic: NicModelKind) -> NetConfig {
        self.nic = nic;
        self
    }

    /// Sets the RX queue count.
    pub fn rx_queues(mut self, n: u32) -> NetConfig {
        self.rx_queues = n;
        self
    }

    /// Sets the flow count for RSS steering.
    pub fn flows(mut self, n: u32) -> NetConfig {
        self.flows = n;
        self
    }

    /// Sets request/response packet sizes.
    pub fn packet_bytes(mut self, request: u64, response: u64) -> NetConfig {
        self.request_bytes = request;
        self.response_bytes = response;
        self
    }

    /// Sets the link line rate.
    pub fn link_gbps(mut self, gbps: f64) -> NetConfig {
        self.link_gbps = gbps;
        self
    }

    /// Sets the protocol-processing cost.
    pub fn proto(mut self, s: Span) -> NetConfig {
        self.proto = s;
        self
    }

    /// Sets the steering cost.
    pub fn steer(mut self, s: Span) -> NetConfig {
        self.steer = s;
        self
    }

    /// Sets the uniform NIC jitter bound.
    pub fn jitter(mut self, s: Span) -> NetConfig {
        self.jitter = s;
        self
    }

    /// Checks internal consistency. A disabled config is always valid.
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled {
            return Ok(());
        }
        if self.rx_queues == 0 {
            return Err("net rx_queues must be at least 1".into());
        }
        if self.flows == 0 {
            return Err("net flows must be at least 1".into());
        }
        if self.request_bytes == 0 {
            return Err("net request_bytes must be at least 1".into());
        }
        if !self.link_gbps.is_finite() || self.link_gbps <= 0.0 {
            return Err(format!("net link_gbps must be positive, got {}", self.link_gbps));
        }
        self.nic.validate()
    }

    /// Serialization time of a `bytes` packet on this link.
    pub fn wire_cost(&self, bytes: u64) -> Span {
        Span::from_ns_f64(bytes as f64 * 8.0 / self.link_gbps)
    }

    /// Computes the full delivery schedule for a batch of wire arrivals.
    ///
    /// `arrivals` are offsets from the load window origin (need not be
    /// sorted); `cores` is the serving core count RSS steers onto. The
    /// returned timeline is sorted by delivered time, so the serving layer
    /// can admit packets in delivery order. `rng` feeds NIC jitter only and
    /// is drawn exactly `arrivals.len()` times when `jitter` is non-zero,
    /// never otherwise.
    pub fn timeline(&self, arrivals: &[Span], cores: u32, rng: &mut SimRng) -> NetTimeline {
        let wire = self.wire_cost(self.request_bytes);
        let base_rx = self.nic.rx_cost(self.request_bytes) + self.proto;
        let mut busy = vec![Span::ZERO; self.rx_queues as usize];
        let mut packets: Vec<PacketTiming> = Vec::with_capacity(arrivals.len());
        for (id, &arrival) in arrivals.iter().enumerate() {
            let flow = id as u64 % u64::from(self.flows);
            let queue = rss_queue(flow, self.rx_queues);
            let core = queue % cores.max(1);
            let jitter = if self.jitter.is_zero() {
                Span::ZERO
            } else {
                Span::from_ps(rng.below(self.jitter.as_ps() + 1))
            };
            let at_nic = arrival + wire;
            let start = at_nic.max(busy[queue as usize]);
            let rx_wait = start.saturating_sub(at_nic);
            let nic = base_rx + jitter;
            busy[queue as usize] = start + nic;
            let delivered = start + nic + self.steer;
            packets.push(PacketTiming {
                arrival,
                delivered,
                queue,
                core,
                wire,
                rx_wait,
                nic,
                steer: self.steer,
            });
        }
        packets.sort_by_key(|p| (p.delivered, p.arrival, p.queue));
        NetTimeline { packets }
    }
}

/// FNV-1a over the flow key, folded onto the RX queue count — the RSS
/// indirection function. Deterministic and stable across runs.
pub fn rss_queue(flow: u64, queues: u32) -> u32 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in flow.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    (h % u64::from(queues.max(1))) as u32
}

/// One packet's trip through the front end, in offsets from the window
/// origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketTiming {
    /// When the packet hit the wire.
    pub arrival: Span,
    /// When the dispatcher saw it (`arrival + wire + rx_wait + nic + steer`).
    pub delivered: Span,
    /// RX queue RSS steered the flow to.
    pub queue: u32,
    /// Core the RX queue notifies.
    pub core: u32,
    /// Link serialization time.
    pub wire: Span,
    /// Time spent waiting behind earlier packets in the same RX queue.
    pub rx_wait: Span,
    /// NIC processing occupancy (model cost + protocol + jitter).
    pub nic: Span,
    /// Steering cost.
    pub steer: Span,
}

/// The precomputed delivery schedule for a load window, sorted by
/// delivered time.
#[derive(Debug, Clone, Default)]
pub struct NetTimeline {
    /// Per-packet timings in delivery order.
    pub packets: Vec<PacketTiming>,
}

impl NetTimeline {
    /// The delivered offsets, in order — what the serving layer admits on.
    pub fn delivered_offsets(&self) -> Vec<Span> {
        self.packets.iter().map(|p| p.delivered).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrivals(n: u64, gap_ns: u64) -> Vec<Span> {
        (0..n).map(|i| Span::from_ns(i * gap_ns)).collect()
    }

    #[test]
    fn wire_cost_matches_line_rate_arithmetic() {
        let net = NetConfig::on();
        // 256 bytes at 100 Gbit/s = 2048 bits / 100 Gb/s = 20.48 ns.
        assert_eq!(net.wire_cost(256).as_ps(), 20_480);
    }

    #[test]
    fn rss_is_deterministic_and_spreads_flows() {
        let mut seen = [false; 4];
        for flow in 0..64 {
            let q = rss_queue(flow, 4);
            assert_eq!(q, rss_queue(flow, 4));
            seen[q as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 flows must touch all 4 queues");
    }

    #[test]
    fn coupling_knob_removes_interconnect_crossings() {
        let discrete = DmaNic::default();
        let fused = DmaNic { coupling: 0.0, ..DmaNic::default() };
        let saved = discrete.rx_cost(256).as_ps() - fused.rx_cost(256).as_ps();
        let crossings = discrete.desc_fetch.as_ps() + discrete.doorbell.as_ps();
        assert_eq!(saved, crossings);
    }

    #[test]
    fn nanopu_beats_dma_at_default_knobs() {
        let dma = NicModelKind::dma().rx_cost(256);
        let nano = NicModelKind::nanopu().rx_cost(256);
        assert!(nano < dma, "nanoPU fast path must undercut the DMA ring ({nano:?} vs {dma:?})");
    }

    #[test]
    fn timeline_is_fifo_per_queue_and_sorted_by_delivery() {
        let net = NetConfig::on().rx_queues(2).flows(8);
        let mut rng = SimRng::from_seed(7);
        let tl = net.timeline(&arrivals(64, 10), 2, &mut rng);
        assert_eq!(tl.packets.len(), 64);
        let mut last_delivered = Span::ZERO;
        let mut last_start = [Span::ZERO; 2];
        for p in &tl.packets {
            assert!(p.delivered >= last_delivered, "timeline must be sorted by delivery");
            last_delivered = p.delivered;
            let start = p.arrival + p.wire + p.rx_wait;
            assert!(start >= last_start[p.queue as usize], "RX queues must be FIFO");
            last_start[p.queue as usize] = start;
            assert_eq!(p.delivered, start + p.nic + p.steer);
            assert_eq!(p.core, p.queue % 2);
        }
    }

    #[test]
    fn timeline_is_reproducible_and_jitter_free_without_jitter() {
        let net = NetConfig::on();
        let a = net.timeline(&arrivals(32, 100), 4, &mut SimRng::from_seed(1));
        let b = net.timeline(&arrivals(32, 100), 4, &mut SimRng::from_seed(999));
        assert_eq!(a.packets, b.packets, "no jitter means the seed must not matter");
        let jittery = net.jitter(Span::from_ns(200));
        let c = jittery.timeline(&arrivals(32, 100), 4, &mut SimRng::from_seed(1));
        let d = jittery.timeline(&arrivals(32, 100), 4, &mut SimRng::from_seed(1));
        assert_eq!(c.packets, d.packets, "same seed, same jitter draw");
        assert_ne!(a.packets, c.packets, "jitter must actually perturb the schedule");
    }

    #[test]
    fn fewer_queues_mean_more_rx_wait() {
        let burst: Vec<Span> = (0..32).map(|_| Span::ZERO).collect();
        let mut rng = SimRng::from_seed(3);
        let wide = NetConfig::on().rx_queues(8).timeline(&burst, 4, &mut rng);
        let narrow = NetConfig::on().rx_queues(1).timeline(&burst, 4, &mut rng);
        let wait = |tl: &NetTimeline| tl.packets.iter().map(|p| p.rx_wait.as_ps()).sum::<u64>();
        assert!(wait(&narrow) > wait(&wide));
    }

    #[test]
    fn validation_rejects_nonsense_only_when_enabled() {
        let off = NetConfig { rx_queues: 0, link_gbps: -1.0, ..NetConfig::default() };
        assert!(off.validate().is_ok(), "disabled configs are inert, never invalid");
        assert!(NetConfig::on().rx_queues(0).validate().is_err());
        assert!(NetConfig::on().flows(0).validate().is_err());
        assert!(NetConfig::on().packet_bytes(0, 64).validate().is_err());
        assert!(NetConfig::on().link_gbps(0.0).validate().is_err());
        let bad = NicModelKind::Dma(DmaNic { coupling: f64::NAN, ..DmaNic::default() });
        assert!(NetConfig::on().nic(bad).validate().is_err());
        assert!(NetConfig::on().validate().is_ok());
    }
}
