//! Scratch perf harness comparing the wheel core against the heap reference
//! on a platform-like pattern: a small in-flight window of closure events at
//! microsecond-scale deltas.

use std::time::Instant;

use kus_sim::heap_ref::RefSim;
use kus_sim::time::{Span, Time};
use kus_sim::Sim;

fn window() -> u64 {
    std::env::var("WINDOW").ok().and_then(|s| s.parse().ok()).unwrap_or(32)
}
const EVENTS: u64 = 1_000_000;

fn wheel_closures() -> u64 {
    let mut sim = Sim::new();
    fn rearm(sim: &mut Sim, x: u64) {
        let delta = 1_000_000 + (x * 2_654_435_761) % 700_000; // ~1-1.7us
        sim.schedule_in(Span::from_ps(delta), move |s| rearm(s, x.wrapping_add(1)));
    }
    for i in 0..window() {
        rearm(&mut sim, i);
    }
    sim.set_event_budget(EVENTS);
    sim.run();
    sim.executed()
}

fn heap_closures() -> u64 {
    let mut sim = RefSim::new();
    fn rearm(sim: &mut RefSim, x: u64) {
        let delta = 1_000_000 + (x * 2_654_435_761) % 700_000;
        sim.schedule_in(Span::from_ps(delta), move |s| rearm(s, x.wrapping_add(1)));
    }
    for i in 0..window() {
        rearm(&mut sim, i);
    }
    sim.set_event_budget(EVENTS);
    sim.run();
    sim.executed()
}

fn wheel_fnarg() -> u64 {
    let mut sim = Sim::new();
    fn rearm(sim: &mut Sim, x: u64) {
        let delta = 1_000_000 + (x * 2_654_435_761) % 700_000;
        sim.schedule_fn_in(Span::from_ps(delta), rearm, x.wrapping_add(1));
    }
    for i in 0..window() {
        rearm(&mut sim, i);
    }
    sim.set_event_budget(EVENTS);
    sim.run();
    sim.executed()
}

fn time_it(name: &str, f: fn() -> u64) {
    let _ = f();
    let start = Instant::now();
    let n = f();
    let el = start.elapsed();
    let _ = Time::ZERO;
    println!(
        "{name}: {:?} for {n} events = {:.1} M ev/s",
        el,
        n as f64 / el.as_secs_f64() / 1e6
    );
}

fn wheel_burst() -> u64 {
    let mut sim = Sim::new();
    fn burst(sim: &mut Sim, x: u64) {
        fn nop(_: &mut Sim, _: u64) {}
        let at = sim.now() + Span::from_ps(1_000_000 + x % 777);
        for i in 0..4096 {
            sim.schedule_fn_at(at, nop, i);
        }
        sim.schedule_fn_at(at, burst, x.wrapping_mul(48271).wrapping_add(1));
    }
    burst(&mut sim, 1);
    sim.set_event_budget(EVENTS);
    sim.run();
    sim.executed()
}

fn heap_burst() -> u64 {
    let mut sim = RefSim::new();
    fn burst(sim: &mut RefSim, x: u64) {
        let at = sim.now() + Span::from_ps(1_000_000 + x % 777);
        for _ in 0..4096 {
            sim.schedule_at(at, |_| {});
        }
        sim.schedule_at(at, move |s| burst(s, x.wrapping_mul(48271).wrapping_add(1)));
    }
    burst(&mut sim, 1);
    sim.set_event_budget(EVENTS);
    sim.run();
    sim.executed()
}

fn wheel_openloop() -> u64 {
    let mut sim = Sim::new();
    fn nop(_: &mut Sim, _: u64) {}
    let mut t = 0u64;
    let mut x = 1u64;
    for _ in 0..EVENTS {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        t += x % 2_000_000;
        sim.schedule_fn_at(Time::from_ps(t), nop, 0);
    }
    sim.run();
    sim.executed()
}

fn heap_openloop() -> u64 {
    let mut sim = RefSim::new();
    let mut t = 0u64;
    let mut x = 1u64;
    for _ in 0..EVENTS {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        t += x % 2_000_000;
        sim.schedule_at(Time::from_ps(t), |_| {});
    }
    sim.run();
    sim.executed()
}

fn main() {
    time_it("heap  closures", heap_closures);
    time_it("wheel closures", wheel_closures);
    time_it("wheel fn-arg  ", wheel_fnarg);
    time_it("heap  burst   ", heap_burst);
    time_it("wheel burst   ", wheel_burst);
    time_it("heap  openloop", heap_openloop);
    time_it("wheel openloop", wheel_openloop);
}
