//! # kus-sim — deterministic discrete-event simulation kernel
//!
//! The foundation of the *killer-usec* workspace (a reproduction of
//! *Taming the Killer Microsecond*, MICRO 2018). Every other crate models its
//! hardware or software component on top of this kernel.
//!
//! - [`time`]: integer-picosecond [`Time`]/[`Span`] newtypes and a cycle
//!   [`Clock`](time::Clock).
//! - [`event`]: the [`Sim`] driver — a hierarchical timing-wheel scheduler
//!   ([`wheel`]) over slab-allocated events ([`slab`]) with batched
//!   same-instant dispatch and deterministic `(time, seq)` ordering.
//! - [`heap_ref`]: the pre-wheel `BinaryHeap` core, retained as the
//!   reference model for differential tests and benchmark baselines.
//! - [`rng`]: seeded, label-splittable random streams.
//! - [`stats`]: counters, occupancy gauges, span histograms, rate helpers.
//! - [`fault`]: deterministic fault injection ([`FaultPlan`] /
//!   [`FaultInjector`]) for chaos experiments.
//! - [`trace`]: zero-cost-when-disabled structured event tracing with a
//!   deterministic content hash, a binary log codec, and a Chrome
//!   `trace_event` exporter.
//!
//! # Examples
//!
//! ```
//! use kus_sim::{Sim, time::Span};
//! use std::{cell::Cell, rc::Rc};
//!
//! let mut sim = Sim::new();
//! let done = Rc::new(Cell::new(false));
//! let d = done.clone();
//! sim.schedule_in(Span::from_us(1), move |_| d.set(true));
//! sim.run();
//! assert!(done.get());
//! assert_eq!(sim.now().as_ns(), 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod fault;
pub mod heap_ref;
pub mod rng;
mod slab;
pub mod stats;
pub mod time;
pub mod trace;
mod wheel;

pub use event::{RunOutcome, Sim};
pub use fault::{FaultInjector, FaultPlan, FaultStats};
pub use rng::SimRng;
pub use time::{Clock, Span, Time};
pub use trace::{Category, FlowArrow, OccupancyTimeline, Phase, TraceEvent, Tracer};
