//! Seeded, splittable random streams.
//!
//! Every source of randomness in the workspace flows through [`SimRng`], so a
//! run is a pure function of its seed. Streams can be *split* by label, which
//! gives independent sub-streams whose draws do not depend on the order in
//! which unrelated components consume randomness — a common determinism bug
//! in simulators.
//!
//! The generator is an in-repo **xoshiro256++** (public domain, Blackman &
//! Vigna) seeded through a splitmix64 expansion. Keeping it in-tree — rather
//! than pulling in the `rand` crate — makes the workspace fully
//! self-contained and guarantees the stream is stable across platforms,
//! Rust versions, and dependency upgrades, which the record/replay
//! methodology and the fault-injection layer both rely on.

/// A deterministic random stream.
///
/// # Examples
///
/// ```
/// use kus_sim::rng::SimRng;
///
/// let mut a = SimRng::from_seed(42);
/// let mut b = SimRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Split sub-streams are independent of sibling consumption order.
/// let mut root = SimRng::from_seed(7);
/// let mut g1 = root.split("graph");
/// let mut g2 = root.split("keys");
/// let _ = g2.next_u64();
/// let mut root2 = SimRng::from_seed(7);
/// assert_eq!(root2.split("graph").next_u64(), g1.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn from_seed(seed: u64) -> SimRng {
        // Expand the seed into full xoshiro state through splitmix64 — the
        // canonical recommendation, and it guarantees a non-zero state.
        let mut sm = seed;
        let state = [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        SimRng { seed, state }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent sub-stream identified by `label`.
    ///
    /// The sub-stream's seed depends only on this stream's *seed* and the
    /// label — not on how many values have been drawn — so components can be
    /// wired up in any order without perturbing each other.
    pub fn split(&self, label: &str) -> SimRng {
        SimRng::from_seed(mix(self.seed, hash_label(label)))
    }

    /// A uniformly random `u64` (one xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniformly random value in `[0, bound)` (rejection-sampled, no
    /// modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Largest multiple of `bound` that fits in a u64; reject above it.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// A uniformly random `f64` in `[0, 1)` (53 mantissa bits).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        if p >= 1.0 {
            // unit_f64() < 1.0 always holds, but make the contract explicit
            // (and still consume one draw so the stream advances uniformly).
            let _ = self.next_u64();
            return true;
        }
        self.unit_f64() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn hash_label(label: &str) -> u64 {
    // FNV-1a: stable across platforms and Rust versions, unlike DefaultHasher.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn mix(a: u64, b: u64) -> u64 {
    // splitmix64 finalizer over the xor of the inputs.
    let mut z = a ^ b.rotate_left(32) ^ 0x9e3779b97f4a7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn split_is_order_independent() {
        let root = SimRng::from_seed(99);
        let mut x1 = root.split("x");
        let mut y1 = root.split("y");
        let first_x = x1.next_u64();
        let first_y = y1.next_u64();

        let root2 = SimRng::from_seed(99);
        let mut y2 = root2.split("y");
        let mut x2 = root2.split("x");
        assert_eq!(first_y, y2.next_u64());
        assert_eq!(first_x, x2.next_u64());
    }

    #[test]
    fn split_differs_by_label() {
        let root = SimRng::from_seed(5);
        assert_ne!(root.split("a").next_u64(), root.split("b").next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::from_seed(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_covers_the_range() {
        let mut r = SimRng::from_seed(11);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn unit_f64_is_in_unit_interval() {
        let mut r = SimRng::from_seed(6);
        for _ in 0..1000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::from_seed(8);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "astronomically unlikely identity");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = SimRng::from_seed(21);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 hit {hits}/10000");
    }
}
