//! Hierarchical timing wheel over the picosecond [`Time`](crate::time::Time)
//! domain.
//!
//! The wheel quantizes deadlines to **ticks** of `2^GRAIN_BITS` ps (65 ns —
//! coarse enough that microsecond-scale deadlines land in level 0 and never
//! cascade; dispatch order stays exact regardless, see below). Eight levels
//! of 64 slots cover the entire tick domain (`64^8 = 2^48` ticks = the full
//! `u64` ps range), so there is no separate overflow structure: the top
//! level doubles as the far-future calendar, holding multi-second (and
//! `Time::MAX`) deadlines in coarse buckets that cascade down as the clock
//! approaches them. Level `l` slots span `64^l` ticks; an event lands at the
//! level whose span covers the highest bit in which its deadline tick
//! differs from the wheel's `elapsed` cursor — O(1) insert.
//!
//! Buckets are flat `Vec`s of [`Ready`] entries (deadline, seq, slab id),
//! not intrusive lists: inserting is a 24-byte append, and cascading or
//! draining a bucket streams a contiguous array instead of pointer-chasing
//! through the event slab — the difference between L1 bandwidth and a DRAM
//! miss per event once millions of events are pending. Bucket capacity is
//! recycled across revolutions, so steady-state scheduling does not
//! allocate.
//!
//! # Determinism argument
//!
//! The wheel reproduces the exact `(time, seq)` total order of a binary
//! heap:
//!
//! - Quantization never reorders: [`next_slot`](Wheel::next_slot) drains one
//!   level-0 slot (one tick) at a time and **sorts the drained events by
//!   their exact `(time, seq)` key** before the driver dispatches them, and
//!   the driver merges any event scheduled *into* the tick currently being
//!   dispatched at its exact sorted position.
//! - Bucket-internal order is therefore irrelevant — cascades may
//!   interleave events arbitrarily without affecting dispatch order.
//! - Cascading only relocates events; it never fires them, so it is
//!   invisible to the simulation.
//!
//! The differential suite in `event.rs` checks this order against the
//! retained [`heap_ref`](crate::heap_ref) model on randomized workloads.
//!
//! # Cursor invariants
//!
//! `elapsed` is the wheel's clock lower bound, in ticks. Invariants
//! maintained: every pending deadline tick is `>= elapsed`; within each
//! level all occupied slots sit at indices `>=` the level cursor in the
//! cursor's revolution (so a one-word occupancy bitmap + `trailing_zeros`
//! finds the next non-empty slot in O(1)); a deadline tick exactly equal to
//! `elapsed` can only sit in the level-0 cursor slot. `next_slot` may
//! advance `elapsed` past the driver's `now` while cascading toward a far
//! next event; if the driver then schedules between `now` and `elapsed`
//! (only possible after a horizon-limited peek), [`Wheel::rewind`] rebuilds
//! the wheel at the earlier cursor — a rare O(pending) fallback, exercised
//! directly by the unit tests.

use crate::slab::Ready;

/// log2 of the tick width in picoseconds: deadlines are bucketed at
/// 65,536 ps ≈ 65 ns granularity (dispatch order stays exact — see above).
/// Sized so that the level-0 revolution (64 ticks ≈ 4.2 µs) covers typical
/// microsecond-scale reschedule deltas: the hot paths then never cascade.
pub(crate) const GRAIN_BITS: u32 = 16;
/// log2 of the slots per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels needed so that `64^LEVELS` covers the full tick domain.
const LEVELS: usize = 8;

/// Hierarchical timing wheel holding `(deadline, seq, slab id)` entries in
/// flat per-slot buckets.
pub(crate) struct Wheel {
    /// Clock lower bound, in ticks. See the module docs for the invariants.
    elapsed: u64,
    /// Per-level occupancy bitmap: bit `i` set iff slot `i` is non-empty.
    occupied: [u64; LEVELS],
    /// Bucket storage, `LEVELS * SLOTS`, flattened level-major. Entry order
    /// inside a bucket is insignificant (see the determinism argument).
    bucket: Vec<Vec<Ready>>,
    /// Recycled scratch buffer for cascades (holds the capacity of the
    /// largest bucket cascaded so far).
    spare: Vec<Ready>,
    /// Pending events across all buckets.
    len: usize,
}

impl Wheel {
    pub(crate) fn new() -> Wheel {
        Wheel {
            elapsed: 0,
            occupied: [0; LEVELS],
            bucket: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            spare: Vec::new(),
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The cursor, in ticks.
    pub(crate) fn elapsed(&self) -> u64 {
        self.elapsed
    }

    /// The level an event at tick distance-pattern `x` belongs to.
    #[inline]
    fn level_of(x: u64) -> usize {
        debug_assert!(x != 0);
        ((63 - x.leading_zeros()) / LEVEL_BITS) as usize
    }

    /// Appends an entry to its bucket. The deadline's tick must be
    /// `>= elapsed` (callers route earlier ones through
    /// [`rewind`](Wheel::rewind) first).
    #[inline]
    pub(crate) fn insert(&mut self, e: Ready) {
        self.len += 1;
        self.insert_inner(e);
    }

    #[inline]
    fn insert_inner(&mut self, e: Ready) {
        let tick = e.at >> GRAIN_BITS;
        debug_assert!(tick >= self.elapsed, "wheel insert behind cursor");
        let x = tick ^ self.elapsed;
        let level = if x == 0 { 0 } else { Self::level_of(x) };
        let shift = LEVEL_BITS * level as u32;
        let idx = ((tick >> shift) & (SLOTS as u64 - 1)) as usize;
        self.bucket[level * SLOTS + idx].push(e);
        self.occupied[level] |= 1 << idx;
    }

    /// The occupied slot with the smallest start tick among levels `1..`,
    /// as `(level, idx, slot_start_tick)`. Ties prefer the *higher* level,
    /// which forces coarse buckets to cascade before an aligned finer bucket
    /// at the same start dispatches. Must only be called when level 0 is
    /// empty but the wheel is not (level 0, when occupied, is always
    /// strictly earliest — see [`next_slot`](Wheel::next_slot)).
    #[cold]
    fn earliest_upper(&self) -> (usize, usize, u64) {
        let mut best = (usize::MAX, 0usize, u64::MAX);
        for level in 1..LEVELS {
            let occ = self.occupied[level];
            if occ == 0 {
                continue;
            }
            let shift = LEVEL_BITS * level as u32;
            let cursor = ((self.elapsed >> shift) & (SLOTS as u64 - 1)) as u32;
            let rel = occ >> cursor;
            debug_assert!(rel != 0, "occupied slot behind the level cursor");
            let idx = cursor + rel.trailing_zeros();
            let above = shift + LEVEL_BITS;
            let page = if above >= 64 { 0 } else { (self.elapsed >> above) << above };
            let start = page | ((idx as u64) << shift);
            if start <= best.2 {
                best = (level, idx as usize, start);
            }
        }
        debug_assert!(best.0 != usize::MAX);
        best
    }

    /// Extracts the next non-empty tick with `tick <= horizon_tick`,
    /// appending its events to `out` **sorted by the exact `(time, seq)`
    /// key**, and leaves the cursor on that tick. Returns whether a tick was
    /// extracted (`out` is left empty otherwise — wheel empty, or nothing
    /// due within the horizon).
    ///
    /// Cascading performed on the way is behaviorally invisible, but may
    /// leave `elapsed` beyond the caller's clock when `false` is returned —
    /// the caller handles later inserts behind `elapsed` via `rewind`.
    #[inline]
    pub(crate) fn next_slot(&mut self, horizon_tick: u64, out: &mut Vec<Ready>) -> bool {
        debug_assert!(out.is_empty());
        if self.len == 0 {
            return false;
        }
        loop {
            // Fast path: any occupied level-0 slot at/after the cursor is
            // *strictly* the earliest work — upper-level buckets in the
            // current rotation always start at or beyond the next level-0
            // revolution boundary (their slot index differs from the level
            // cursor, so their start has a higher-order bit above the whole
            // level-0 page). No level scan needed.
            let c0 = (self.elapsed & (SLOTS as u64 - 1)) as u32;
            let rel0 = self.occupied[0] >> c0;
            if rel0 != 0 {
                let idx = (c0 + rel0.trailing_zeros()) as usize;
                let start = (self.elapsed & !(SLOTS as u64 - 1)) | idx as u64;
                if start > horizon_tick {
                    return false;
                }
                self.elapsed = start;
                self.occupied[0] &= !(1 << idx);
                let b = &mut self.bucket[idx];
                debug_assert!(b.iter().all(|e| e.at >> GRAIN_BITS == start));
                self.len -= b.len();
                out.append(b);
                if out.len() > 1 {
                    out.sort_unstable_by_key(|e| (e.at, e.seq));
                }
                return true;
            }
            let (level, idx, start) = self.earliest_upper();
            if start > horizon_tick {
                // The true next deadline is >= start, so nothing is due.
                return false;
            }
            // Cascade the coarse bucket: advance the cursor to the bucket's
            // start and re-bucket its events one or more levels finer. An
            // entry never lands back in the same bucket (relative to the new
            // cursor its distance pattern is strictly below this level), so
            // streaming from the detached buffer is safe.
            self.elapsed = self.elapsed.max(start);
            self.occupied[level] &= !(1 << idx);
            let mut list = std::mem::replace(
                &mut self.bucket[level * SLOTS + idx],
                std::mem::take(&mut self.spare),
            );
            for &e in &list {
                self.insert_inner(e);
            }
            list.clear();
            self.spare = list;
        }
    }

    /// Moves the cursor *backwards* to `tick` (which must still cover
    /// deadlines `>=` the driver's clock), re-bucketing every pending event
    /// relative to the new cursor. Only reachable when a horizon-limited
    /// peek cascaded ahead and the driver then scheduled into the gap —
    /// rare, and O(pending).
    pub(crate) fn rewind(&mut self, tick: u64) {
        debug_assert!(tick < self.elapsed);
        let mut all = Vec::with_capacity(self.len);
        for level in 0..LEVELS {
            let mut occ = self.occupied[level];
            self.occupied[level] = 0;
            while occ != 0 {
                let idx = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                all.append(&mut self.bucket[level * SLOTS + idx]);
            }
        }
        self.elapsed = tick;
        for e in all {
            self.insert_inner(e);
        }
    }
}
