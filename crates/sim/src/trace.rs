//! Deterministic structured event tracing.
//!
//! A [`Tracer`] is a cheap clonable handle that every instrumented component
//! holds. Disabled (the default), it is a `None` and each emission costs one
//! branch; enabled, events are appended to a shared in-memory buffer together
//! with a running content hash.
//!
//! The design invariants that make traces usable as regression oracles:
//!
//! - **Inert**: tracing never schedules events, never draws from an RNG
//!   stream, and never feeds back into component state, so a traced run is
//!   bit-identical (in simulated behaviour) to an untraced one.
//! - **Deterministic**: events are emitted from simulation callbacks, which
//!   the [`Sim`](crate::Sim) kernel orders deterministically; the trace of a
//!   `(seed, config)` pair is therefore byte-stable across runs and builds.
//! - **Hashable**: [`Tracer::hash`] folds every event into an FNV-1a-64 over
//!   the event's canonical binary encoding, so "same behaviour" can be
//!   asserted with a single integer while [`encode`]/[`decode`] keep the full
//!   stream inspectable when a hash test fails.
//!
//! Two exporters: [`chrome_json`] renders the Chrome `trace_event` format for
//! `chrome://tracing` / [Perfetto](https://ui.perfetto.dev), and [`encode`]
//! produces the compact binary log the hash is defined over.
//!
//! Timestamps come from the shared simulation clock
//! ([`Sim::now_handle`](crate::Sim::now_handle)), so components can emit
//! without a `&Sim` in scope.
//!
//! With the `trace` cargo feature disabled (the default), the deep per-access
//! event class is compiled out: [`Tracer::set_verbose`] is a no-op and
//! [`Tracer::is_verbose`] is always false.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use crate::time::{Span, Time};

/// Subsystem that emitted an event. The discriminant is part of the stable
/// binary encoding — append new categories, never reorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Category {
    /// Simulation kernel / platform lifecycle.
    Sim = 0,
    /// Cache hierarchy and line-fill buffers (`kus-mem`).
    Mem = 1,
    /// PCIe link TLPs (`kus-pcie`).
    Pcie = 2,
    /// Device datapath and request fetcher (`kus-device`).
    Device = 3,
    /// Software-queue descriptor lifecycle (`kus-swq` call sites).
    Swq = 4,
    /// Fiber scheduling and watchdog (`kus-fiber`).
    Fiber = 5,
    /// Executor-level recovery: deadlines, retries, failover (`kus-core`).
    Exec = 6,
    /// Request serving: arrivals, dispatch, sheds, completions (`kus-load`).
    Load = 7,
    /// Per-core cycle accounting: compute/stall/switch/poll spans emitted
    /// only when profiling is enabled (`kus-cpu`, `kus-core`).
    Cpu = 8,
}

impl Category {
    fn from_u8(v: u8) -> Option<Category> {
        use Category::*;
        Some(match v {
            0 => Sim,
            1 => Mem,
            2 => Pcie,
            3 => Device,
            4 => Swq,
            5 => Fiber,
            6 => Exec,
            7 => Load,
            8 => Cpu,
            _ => return None,
        })
    }

    /// Short lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            Category::Sim => "sim",
            Category::Mem => "mem",
            Category::Pcie => "pcie",
            Category::Device => "device",
            Category::Swq => "swq",
            Category::Fiber => "fiber",
            Category::Exec => "exec",
            Category::Load => "load",
            Category::Cpu => "cpu",
        }
    }
}

/// Event shape, mirroring the Chrome `trace_event` phases we use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Phase {
    /// A point event (`ph: "i"`). `a0`/`a1` are free-form arguments.
    Instant = 0,
    /// A sampled counter (`ph: "C"`). `a0` is the counter value.
    Counter = 1,
    /// A span (`ph: "X"`). `a0` is a free-form argument, `a1` is the
    /// duration in picoseconds; `at` is the span start.
    Complete = 2,
}

impl Phase {
    fn from_u8(v: u8) -> Option<Phase> {
        Some(match v {
            0 => Phase::Instant,
            1 => Phase::Counter,
            2 => Phase::Complete,
            _ => return None,
        })
    }

    fn chrome(self) -> char {
        match self {
            Phase::Instant => 'i',
            Phase::Counter => 'C',
            Phase::Complete => 'X',
        }
    }
}

/// One trace event. `name` is a static string (e.g. `"swq.enqueue"`);
/// `track` selects the timeline row (host core, fetcher, link direction…);
/// `a0`/`a1` carry event-specific arguments (tags, occupancy levels,
/// durations) per the conventions documented in DESIGN.md §9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated timestamp of the event (span start for [`Phase::Complete`]).
    pub at: Time,
    /// Emitting subsystem.
    pub cat: Category,
    /// Event name, dot-namespaced within the category.
    pub name: &'static str,
    /// Event shape.
    pub phase: Phase,
    /// Timeline row (see DESIGN.md §9 for the track-id scheme).
    pub track: u32,
    /// First argument (tag, line index, counter value…).
    pub a0: u64,
    /// Second argument (occupancy after, duration in ps for `Complete`…).
    pub a1: u64,
}

impl TraceEvent {
    /// Canonical single-line rendering, shared by the golden-trace snapshots
    /// and failure diffs. Stable: changing this format invalidates goldens.
    pub fn render(&self) -> String {
        format!(
            "{:>12}ps {}/{} {:?} t={} a0={} a1={}",
            self.at.as_ps(),
            self.cat.label(),
            self.name,
            self.phase,
            self.track,
            self.a0,
            self.a1,
        )
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// An event decoded from the binary log: identical to [`TraceEvent`] except
/// the name is owned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedEvent {
    /// Simulated timestamp.
    pub at: Time,
    /// Emitting subsystem.
    pub cat: Category,
    /// Event name.
    pub name: String,
    /// Event shape.
    pub phase: Phase,
    /// Timeline row.
    pub track: u32,
    /// First argument.
    pub a0: u64,
    /// Second argument.
    pub a1: u64,
}

impl DecodedEvent {
    /// Same rendering as [`TraceEvent::render`], so decoded streams compare
    /// textually equal to live ones.
    pub fn render(&self) -> String {
        format!(
            "{:>12}ps {}/{} {:?} t={} a0={} a1={}",
            self.at.as_ps(),
            self.cat.label(),
            self.name,
            self.phase,
            self.track,
            self.a0,
            self.a1,
        )
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Serializes one event into the canonical byte form the content hash is
/// defined over (also the per-event record of the binary log).
fn event_bytes(at: Time, cat: Category, name: &str, phase: Phase, track: u32, a0: u64, a1: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + name.len());
    out.extend_from_slice(&at.as_ps().to_le_bytes());
    out.push(cat as u8);
    out.push(phase as u8);
    out.extend_from_slice(&track.to_le_bytes());
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(&a0.to_le_bytes());
    out.extend_from_slice(&a1.to_le_bytes());
    out
}

struct TraceState {
    hash: u64,
    count: u64,
    events: Vec<TraceEvent>,
}

struct TracerInner {
    clock: Rc<Cell<Time>>,
    state: RefCell<TraceState>,
    /// Cycle-accounting event class ([`Category::Cpu`] spans, occupancy
    /// counters). A *runtime* gate, unlike `verbose`: profiling changes the
    /// event stream (and so the hash), so it is opt-in per run and off for
    /// every golden-locked scenario.
    profile: Cell<bool>,
    /// Causal event class: per-child fan-out spans, egress spans, and the
    /// other anchors the span-DAG reconstruction needs. Like `profile`, a
    /// *runtime* gate: causal events extend the stream (and so the hash)
    /// deterministically, so it is opt-in per run and off for every
    /// golden-locked scenario.
    causal: Cell<bool>,
    #[cfg(feature = "trace")]
    verbose: Cell<bool>,
}

/// Handle to the (possibly disabled) trace sink. Clone freely: all clones
/// share one buffer. `Tracer::default()` is the disabled tracer.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<TracerInner>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => write!(f, "Tracer(off)"),
            Some(i) => {
                let s = i.state.borrow();
                write!(f, "Tracer(on, {} events, hash {:016x})", s.count, s.hash)
            }
        }
    }
}

impl Tracer {
    /// The disabled tracer: every emission is a single branch, nothing is
    /// recorded.
    pub fn off() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled tracer timestamping from `clock` (obtain one via
    /// [`Sim::now_handle`](crate::Sim::now_handle)).
    pub fn new(clock: Rc<Cell<Time>>) -> Tracer {
        Tracer {
            inner: Some(Rc::new(TracerInner {
                clock,
                state: RefCell::new(TraceState { hash: FNV_OFFSET, count: 0, events: Vec::new() }),
                profile: Cell::new(false),
                causal: Cell::new(false),
                #[cfg(feature = "trace")]
                verbose: Cell::new(false),
            })),
        }
    }

    /// Whether events are being recorded.
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Enables the deep per-access event class (e.g. every L1 read). Only
    /// effective when compiled with the `trace` cargo feature; otherwise a
    /// no-op, so default builds never emit deep events and golden hashes
    /// stay identical across feature configurations.
    pub fn set_verbose(&self, on: bool) {
        #[cfg(feature = "trace")]
        if let Some(i) = &self.inner {
            i.verbose.set(on);
        }
        #[cfg(not(feature = "trace"))]
        let _ = on;
    }

    /// Enables the cycle-accounting event class: per-core compute / stall /
    /// context-switch / poll spans and resource-occupancy counters, the raw
    /// material of `kus-profile`. A runtime flag (no cargo feature): these
    /// events extend the stream and its hash, so profiled runs hash
    /// differently from plain traced runs — deterministically so.
    pub fn set_profile(&self, on: bool) {
        if let Some(i) = &self.inner {
            i.profile.set(on);
        }
    }

    /// Whether cycle-accounting events should be emitted. Always false for
    /// a disabled tracer.
    pub fn is_profile(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.profile.get())
    }

    /// Enables the causal event class: per-child fan-out completion spans,
    /// egress (`rpc.tx`) spans, and the other anchors from which a request's
    /// span DAG and critical path are reconstructed at harvest. A runtime
    /// flag like [`set_profile`](Self::set_profile): causal events extend the
    /// stream and its hash — deterministically — but never change simulated
    /// behaviour.
    pub fn set_causal(&self, on: bool) {
        if let Some(i) = &self.inner {
            i.causal.set(on);
        }
    }

    /// Whether causal events should be emitted. Always false for a disabled
    /// tracer.
    pub fn is_causal(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.causal.get())
    }

    /// Whether deep per-access events should be emitted.
    pub fn is_verbose(&self) -> bool {
        #[cfg(feature = "trace")]
        {
            self.inner.as_ref().is_some_and(|i| i.verbose.get())
        }
        #[cfg(not(feature = "trace"))]
        {
            false
        }
    }

    /// Records one event at the current simulated time. No-op when disabled.
    pub fn emit(&self, cat: Category, name: &'static str, phase: Phase, track: u32, a0: u64, a1: u64) {
        let Some(inner) = &self.inner else { return };
        let at = inner.clock.get();
        let mut s = inner.state.borrow_mut();
        s.hash = fnv1a(s.hash, &event_bytes(at, cat, name, phase, track, a0, a1));
        s.count += 1;
        s.events.push(TraceEvent { at, cat, name, phase, track, a0, a1 });
    }

    /// Emits an [`Phase::Instant`] event.
    pub fn instant(&self, cat: Category, name: &'static str, track: u32, a0: u64, a1: u64) {
        self.emit(cat, name, Phase::Instant, track, a0, a1);
    }

    /// Emits a [`Phase::Counter`] sample of `value`.
    pub fn counter(&self, cat: Category, name: &'static str, track: u32, value: u64) {
        self.emit(cat, name, Phase::Counter, track, value, 0);
    }

    /// Emits a [`Phase::Complete`] span that started at `start` and ends now.
    /// The duration lands in `a1` (picoseconds).
    pub fn complete_since(&self, cat: Category, name: &'static str, track: u32, start: Time, a0: u64) {
        let Some(inner) = &self.inner else { return };
        let now = inner.clock.get();
        let dur = (now - start).as_ps();
        let mut s = inner.state.borrow_mut();
        s.hash = fnv1a(s.hash, &event_bytes(start, cat, name, Phase::Complete, track, a0, dur));
        s.count += 1;
        s.events.push(TraceEvent { at: start, cat, name, phase: Phase::Complete, track, a0, a1: dur });
    }

    /// Emits a [`Phase::Complete`] span over an explicit `[start, end]`
    /// interval, independent of the current clock. Needed by spans whose end
    /// is not "now" at emission time: a child completion recorded from a
    /// device callback, or an egress span that extends past the emitting
    /// instant. `end` earlier than `start` records a zero-length span.
    pub fn complete_span(&self, cat: Category, name: &'static str, track: u32, start: Time, end: Time, a0: u64) {
        let Some(inner) = &self.inner else { return };
        let dur = if end > start { (end - start).as_ps() } else { 0 };
        let mut s = inner.state.borrow_mut();
        s.hash = fnv1a(s.hash, &event_bytes(start, cat, name, Phase::Complete, track, a0, dur));
        s.count += 1;
        s.events.push(TraceEvent { at: start, cat, name, phase: Phase::Complete, track, a0, a1: dur });
    }

    /// Running FNV-1a-64 content hash over all events so far (the hash of
    /// the empty trace for a disabled tracer).
    pub fn hash(&self) -> u64 {
        match &self.inner {
            None => FNV_OFFSET,
            Some(i) => i.state.borrow().hash,
        }
    }

    /// Number of events recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.state.borrow().count)
    }

    /// A snapshot of the recorded events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.state.borrow().events.clone())
    }
}

/// Recomputes the content hash of an event slice; equals [`Tracer::hash`]
/// after those events were emitted.
pub fn hash_events(events: &[TraceEvent]) -> u64 {
    events.iter().fold(FNV_OFFSET, |h, e| {
        fnv1a(h, &event_bytes(e.at, e.cat, e.name, e.phase, e.track, e.a0, e.a1))
    })
}

/// Magic header of the binary trace log (7 bytes magic + 1 byte version).
pub const TRACE_MAGIC: &[u8; 8] = b"KUSTRC\x00\x01";

/// Encodes events into the compact binary log: [`TRACE_MAGIC`], a `u64`
/// event count, then each event's canonical record (the bytes the content
/// hash is computed over).
pub fn encode(events: &[TraceEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + events.len() * 40);
    out.extend_from_slice(TRACE_MAGIC);
    out.extend_from_slice(&(events.len() as u64).to_le_bytes());
    for e in events {
        out.extend_from_slice(&event_bytes(e.at, e.cat, e.name, e.phase, e.track, e.a0, e.a1));
    }
    out
}

/// Decoding failure: offset and description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace decode error at byte {}: {}", self.offset, self.what)
    }
}

/// Decodes a binary log produced by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<Vec<DecodedEvent>, DecodeError> {
    let err = |offset, what| DecodeError { offset, what };
    if bytes.len() < 16 {
        return Err(err(0, "truncated header"));
    }
    if &bytes[0..8] != TRACE_MAGIC {
        return Err(err(0, "bad magic"));
    }
    let count = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    let mut pos = 16;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], DecodeError> {
        let s = bytes.get(*pos..*pos + n).ok_or(DecodeError { offset: *pos, what: "truncated record" })?;
        *pos += n;
        Ok(s)
    };
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let at = Time::from_ps(u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()));
        let cat_at = pos;
        let cat = Category::from_u8(take(&mut pos, 1)?[0]).ok_or(err(cat_at, "unknown category"))?;
        let phase_at = pos;
        let phase = Phase::from_u8(take(&mut pos, 1)?[0]).ok_or(err(phase_at, "unknown phase"))?;
        let track = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
        let name_at = pos;
        let name = std::str::from_utf8(take(&mut pos, name_len)?)
            .map_err(|_| err(name_at, "event name is not UTF-8"))?
            .to_string();
        let a0 = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let a1 = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        out.push(DecodedEvent { at, cat, name, phase, track, a0, a1 });
    }
    if pos != bytes.len() {
        return Err(err(pos, "trailing bytes after last record"));
    }
    Ok(out)
}

/// Timestamp in fractional microseconds, rendered without going through
/// floating point so the JSON is byte-deterministic.
fn chrome_ts(t: Time) -> String {
    let ps = t.as_ps();
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

fn json_escape(s: &str) -> String {
    // Event names are static identifiers; escape defensively anyway.
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// A causal arrow between two points on the timeline, rendered as a Chrome
/// `trace_event` flow (`ph:"s"` → `ph:"f"`) so Perfetto draws the DAG edges
/// over the spans. `id` must be unique per arrow within one export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowArrow {
    /// Flow id binding the start and finish halves together.
    pub id: u64,
    /// Edge label (e.g. `"fanout"`, `"join"`).
    pub name: &'static str,
    /// Where the arrow leaves.
    pub from: Time,
    /// Track the arrow leaves from.
    pub from_track: u32,
    /// Where the arrow lands.
    pub to: Time,
    /// Track the arrow lands on.
    pub to_track: u32,
}

/// Renders events as Chrome `trace_event` JSON (the "JSON array format"),
/// loadable in `chrome://tracing` and Perfetto. Deterministic: the same
/// event stream yields byte-identical output.
pub fn chrome_json(events: &[TraceEvent]) -> String {
    chrome_json_with_flows(events, &[])
}

/// [`chrome_json`] plus causal [`FlowArrow`]s appended as flow-event pairs.
/// With an empty `flows` slice the output is byte-identical to
/// [`chrome_json`].
pub fn chrome_json_with_flows(events: &[TraceEvent], flows: &[FlowArrow]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96 + flows.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let name = json_escape(e.name);
        let cat = e.cat.label();
        let ts = chrome_ts(e.at);
        out.push_str(&format!(
            "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"{}\",\"ts\":{ts},\"pid\":0,\"tid\":{}",
            e.phase.chrome(),
            e.track,
        ));
        match e.phase {
            Phase::Instant => {
                out.push_str(&format!(",\"s\":\"t\",\"args\":{{\"a0\":{},\"a1\":{}}}", e.a0, e.a1));
            }
            Phase::Counter => {
                out.push_str(&format!(",\"args\":{{\"{name}\":{}}}", e.a0));
            }
            Phase::Complete => {
                out.push_str(&format!(",\"dur\":{},\"args\":{{\"a0\":{}}}", chrome_ts(Time::from_ps(e.a1)), e.a0));
            }
        }
        out.push('}');
    }
    for (i, f) in flows.iter().enumerate() {
        if !events.is_empty() || i > 0 {
            out.push_str(",\n");
        }
        let name = json_escape(f.name);
        out.push_str(&format!(
            "{{\"name\":\"{name}\",\"cat\":\"causal\",\"ph\":\"s\",\"id\":{},\"ts\":{},\"pid\":0,\"tid\":{}}},\n",
            f.id,
            chrome_ts(f.from),
            f.from_track,
        ));
        out.push_str(&format!(
            "{{\"name\":\"{name}\",\"cat\":\"causal\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\"ts\":{},\"pid\":0,\"tid\":{}}}",
            f.id,
            chrome_ts(f.to),
            f.to_track,
        ));
    }
    out.push_str("\n]}\n");
    out
}

/// A time-weighted occupancy profile derived from a stream of
/// `(timestamp, level)` samples: how long the tracked quantity (LFB entries
/// in use, ring slots pending, …) sat at each level.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OccupancyTimeline {
    /// `time_at_level[l]` is the total simulated time spent at level `l`.
    pub time_at_level: Vec<Span>,
    /// Highest level observed.
    pub max_level: u64,
    /// Number of level-change samples folded in.
    pub samples: u64,
}

impl OccupancyTimeline {
    /// Builds a timeline from `(time, level-after)` samples, assumed
    /// time-ordered, starting from level 0 at time zero and ending at `end`.
    pub fn from_samples(samples: impl IntoIterator<Item = (Time, u64)>, end: Time) -> OccupancyTimeline {
        let mut tl = OccupancyTimeline::default();
        let mut level = 0u64;
        let mut since = Time::ZERO;
        for (at, next) in samples {
            let at = at.min(end);
            tl.credit(level, at - since);
            level = next;
            since = at;
            tl.max_level = tl.max_level.max(next);
            tl.samples += 1;
        }
        if end > since {
            tl.credit(level, end - since);
        }
        tl
    }

    fn credit(&mut self, level: u64, dur: Span) {
        if dur == Span::ZERO {
            return;
        }
        let idx = level as usize;
        if self.time_at_level.len() <= idx {
            self.time_at_level.resize(idx + 1, Span::ZERO);
        }
        self.time_at_level[idx] += dur;
    }

    /// Total time covered by the profile.
    pub fn total(&self) -> Span {
        self.time_at_level.iter().fold(Span::ZERO, |a, &s| a + s)
    }

    /// Time-weighted mean level.
    pub fn mean(&self) -> f64 {
        let total = self.total().as_ps();
        if total == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .time_at_level
            .iter()
            .enumerate()
            .map(|(l, s)| l as f64 * s.as_ps() as f64)
            .sum();
        weighted / total as f64
    }

    /// Fraction of time spent at or above `level`.
    pub fn fraction_at_or_above(&self, level: u64) -> f64 {
        let total = self.total().as_ps();
        if total == 0 {
            return 0.0;
        }
        let above: u64 = self.time_at_level.iter().skip(level as usize).map(|s| s.as_ps()).sum();
        above as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sim;

    fn ev(at_ns: u64, name: &'static str, a0: u64) -> TraceEvent {
        TraceEvent {
            at: Time::ZERO + Span::from_ns(at_ns),
            cat: Category::Swq,
            name,
            phase: Phase::Instant,
            track: 0,
            a0,
            a1: 0,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::off();
        t.instant(Category::Sim, "x", 0, 1, 2);
        assert!(!t.is_on());
        assert_eq!(t.count(), 0);
        assert_eq!(t.hash(), FNV_OFFSET);
        assert!(t.events().is_empty());
    }

    #[test]
    fn tracer_timestamps_from_sim_clock() {
        let mut sim = Sim::new();
        let t = Tracer::new(sim.now_handle());
        let t2 = t.clone();
        sim.schedule_in(Span::from_ns(42), move |_| t2.instant(Category::Mem, "probe", 3, 7, 9));
        sim.run();
        let evs = t.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].at.as_ns(), 42);
        assert_eq!((evs[0].track, evs[0].a0, evs[0].a1), (3, 7, 9));
    }

    #[test]
    fn hash_matches_recomputation_and_is_order_sensitive() {
        let a = vec![ev(1, "a", 1), ev(2, "b", 2)];
        let b = vec![ev(2, "b", 2), ev(1, "a", 1)];
        assert_ne!(hash_events(&a), hash_events(&b));

        let sim = Sim::new();
        let t = Tracer::new(sim.now_handle());
        t.instant(Category::Swq, "a", 0, 1, 0);
        t.instant(Category::Swq, "b", 0, 2, 0);
        assert_eq!(t.hash(), hash_events(&t.events()));
        assert_eq!(t.count(), 2);
    }

    #[test]
    fn binary_roundtrip_preserves_events() {
        let evs = vec![ev(5, "swq.enqueue", 17), ev(9, "swq.deliver", 17)];
        let bytes = encode(&evs);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.len(), 2);
        for (d, e) in decoded.iter().zip(&evs) {
            assert_eq!(d.render(), e.render());
            assert_eq!((d.at, d.cat, d.phase, d.track, d.a0, d.a1), (e.at, e.cat, e.phase, e.track, e.a0, e.a1));
            assert_eq!(d.name, e.name);
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        let evs = vec![ev(5, "x", 1)];
        let mut bytes = encode(&evs);
        assert!(decode(&bytes[..10]).is_err(), "truncated header");
        bytes[0] = b'Z';
        assert!(decode(&bytes).is_err(), "bad magic");
        let mut ok = encode(&evs);
        ok.push(0);
        assert!(decode(&ok).is_err(), "trailing bytes");
    }

    #[test]
    fn chrome_json_is_parseable_shape() {
        let evs = vec![
            ev(1, "swq.enqueue", 3),
            TraceEvent {
                at: Time::from_ps(1_500_000),
                cat: Category::Device,
                name: "dev.resp",
                phase: Phase::Complete,
                track: 200,
                a0: 4,
                a1: 2_000_000,
            },
            TraceEvent {
                at: Time::from_ps(2_000_000),
                cat: Category::Mem,
                name: "lfb.occ",
                phase: Phase::Counter,
                track: 0,
                a0: 6,
                a1: 0,
            },
        ];
        let json = chrome_json(&evs);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ts\":1.500000"));
        assert!(json.contains("\"dur\":2.000000"));
        assert!(json.trim_end().ends_with("]}"));
        // Balanced braces/brackets (cheap well-formedness check, no JSON dep).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn occupancy_timeline_time_weighting() {
        let end = Time::ZERO + Span::from_ns(100);
        let samples = vec![
            (Time::ZERO + Span::from_ns(10), 1),
            (Time::ZERO + Span::from_ns(30), 2),
            (Time::ZERO + Span::from_ns(60), 0),
        ];
        let tl = OccupancyTimeline::from_samples(samples, end);
        assert_eq!(tl.max_level, 2);
        assert_eq!(tl.samples, 3);
        assert_eq!(tl.time_at_level[0], Span::from_ns(10 + 40));
        assert_eq!(tl.time_at_level[1], Span::from_ns(20));
        assert_eq!(tl.time_at_level[2], Span::from_ns(30));
        assert_eq!(tl.total(), Span::from_ns(100));
        let mean = tl.mean();
        assert!((mean - 0.8).abs() < 1e-9, "mean {mean}");
        let frac = tl.fraction_at_or_above(1);
        assert!((frac - 0.5).abs() < 1e-9, "frac {frac}");
    }

    #[test]
    fn occupancy_timeline_empty_samples() {
        let end = Time::ZERO + Span::from_ns(50);
        let tl = OccupancyTimeline::from_samples(std::iter::empty(), end);
        // No samples: the whole window is credited to the implicit level 0.
        assert_eq!(tl.samples, 0);
        assert_eq!(tl.max_level, 0);
        assert_eq!(tl.time_at_level, vec![Span::from_ns(50)]);
        assert_eq!(tl.total(), Span::from_ns(50));
        assert_eq!(tl.mean(), 0.0);

        // Degenerate window: nothing to credit at all.
        let tl = OccupancyTimeline::from_samples(std::iter::empty(), Time::ZERO);
        assert!(tl.time_at_level.is_empty());
        assert_eq!(tl.total(), Span::ZERO);
        assert_eq!(tl.mean(), 0.0);
        assert_eq!(tl.fraction_at_or_above(0), 0.0);
    }

    #[test]
    fn occupancy_timeline_end_before_last_sample() {
        // Samples past `end` are clamped: the level change at 80 ns lands on
        // the 60 ns boundary with zero duration at its new level, and the
        // timeline still totals exactly the window.
        let end = Time::ZERO + Span::from_ns(60);
        let samples = vec![
            (Time::ZERO + Span::from_ns(20), 3),
            (Time::ZERO + Span::from_ns(80), 7),
        ];
        let tl = OccupancyTimeline::from_samples(samples, end);
        assert_eq!(tl.samples, 2);
        assert_eq!(tl.max_level, 7, "clamping must not hide the observed level");
        assert_eq!(tl.time_at_level[0], Span::from_ns(20));
        assert_eq!(tl.time_at_level[3], Span::from_ns(40));
        assert_eq!(tl.total(), Span::from_ns(60), "total must equal the window despite clamping");
        assert_eq!(tl.fraction_at_or_above(7), 0.0);
    }

    #[test]
    fn occupancy_timeline_duplicate_timestamps() {
        // Two level changes at the same instant: the transient middle level
        // gets zero duration and must not be credited (no zero-width buckets),
        // but it still counts as a sample and can set max_level.
        let end = Time::ZERO + Span::from_ns(40);
        let samples = vec![
            (Time::ZERO + Span::from_ns(10), 5),
            (Time::ZERO + Span::from_ns(10), 2),
            (Time::ZERO + Span::from_ns(30), 0),
        ];
        let tl = OccupancyTimeline::from_samples(samples, end);
        assert_eq!(tl.samples, 3);
        assert_eq!(tl.max_level, 5);
        assert_eq!(tl.time_at_level[0], Span::from_ns(10 + 10));
        assert_eq!(tl.time_at_level[2], Span::from_ns(20));
        assert!(tl.time_at_level.get(5).is_none_or(|&s| s == Span::ZERO));
        assert_eq!(tl.total(), Span::from_ns(40));
    }

    #[test]
    fn profile_flag_is_runtime_gated() {
        let sim = Sim::new();
        let t = Tracer::new(sim.now_handle());
        assert!(!t.is_profile());
        t.set_profile(true);
        assert!(t.is_profile(), "profile class is a runtime flag, not a cargo feature");
        t.set_profile(false);
        assert!(!t.is_profile());
        let off = Tracer::off();
        off.set_profile(true);
        assert!(!off.is_profile(), "disabled tracer never profiles");
    }

    #[test]
    fn causal_flag_is_runtime_gated() {
        let sim = Sim::new();
        let t = Tracer::new(sim.now_handle());
        assert!(!t.is_causal());
        t.set_causal(true);
        assert!(t.is_causal(), "causal class is a runtime flag, not a cargo feature");
        t.set_causal(false);
        assert!(!t.is_causal());
        let off = Tracer::off();
        off.set_causal(true);
        assert!(!off.is_causal(), "disabled tracer never emits causal events");
    }

    #[test]
    fn complete_span_uses_explicit_interval() {
        let sim = Sim::new();
        let t = Tracer::new(sim.now_handle());
        let start = Time::from_ps(1_000);
        let end = Time::from_ps(4_500);
        t.complete_span(Category::Load, "rpc.hop", 3, start, end, 42);
        // Inverted interval: zero-length span, never a panic or underflow.
        t.complete_span(Category::Load, "rpc.hop", 3, end, start, 43);
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].at, evs[0].a0, evs[0].a1), (start, 42, 3_500));
        assert_eq!(evs[0].phase, Phase::Complete);
        assert_eq!((evs[1].at, evs[1].a1), (end, 0));
        assert_eq!(t.hash(), hash_events(&evs), "explicit spans hash like any other event");
    }

    #[test]
    fn flow_export_extends_chrome_json_without_perturbing_it() {
        let evs = vec![ev(1, "swq.enqueue", 3)];
        assert_eq!(chrome_json(&evs), chrome_json_with_flows(&evs, &[]));
        let flows = vec![FlowArrow {
            id: 7,
            name: "fanout",
            from: Time::from_ps(1_000_000),
            from_track: 1,
            to: Time::from_ps(3_000_000),
            to_track: 2,
        }];
        let json = chrome_json_with_flows(&evs, &flows);
        assert!(json.contains("\"ph\":\"s\",\"id\":7,\"ts\":1.000000"));
        assert!(json.contains("\"ph\":\"f\",\"bp\":\"e\",\"id\":7,\"ts\":3.000000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Flows with no base events still form a valid array.
        let lone = chrome_json_with_flows(&[], &flows);
        assert_eq!(lone.matches('{').count(), lone.matches('}').count());
        assert!(lone.contains("\"ph\":\"s\""));
    }

    #[test]
    fn verbose_is_gated_by_feature() {
        let sim = Sim::new();
        let t = Tracer::new(sim.now_handle());
        assert!(!t.is_verbose());
        t.set_verbose(true);
        assert_eq!(t.is_verbose(), cfg!(feature = "trace"));
    }
}
