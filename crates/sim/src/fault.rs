//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes *what* can go wrong and how often; a
//! [`FaultInjector`] turns the plan into concrete yes/no decisions drawn
//! from labeled [`SimRng`](crate::rng::SimRng) sub-streams, one per
//! injection site. Because each site owns its own stream, adding or
//! removing one fault class never perturbs the draws of another — the
//! same seed and plan always produce the same fault schedule.
//!
//! The injector is pure decision logic: the components being faulted
//! (link, device, fetcher, doorbell path) query it at their injection
//! points and act on the answer. Every positive decision is counted in
//! [`FaultStats`] so runs can assert on exact fault counts.
//!
//! A plan with all probabilities at zero is *inert*: the injector draws
//! nothing from any stream, so zero-plan runs are bit-for-bit identical
//! to runs without the fault layer at all.

use crate::rng::SimRng;
use crate::stats::Counter;
use crate::time::Span;

/// Probabilities and magnitudes for every injectable fault class.
///
/// All fields default to "off"; compose a plan with the `with_*` builders
/// or parse one from TOML with [`FaultPlan::parse_toml`].
///
/// # Examples
///
/// ```
/// use kus_sim::fault::FaultPlan;
///
/// let plan = FaultPlan::none().with_stalls(0.01).with_dropped_completions(0.001);
/// assert!(plan.is_active());
/// assert!(plan.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability that a device request's service time is inflated.
    pub latency_spike_prob: f64,
    /// Maximum extra service time added by a spike; the actual inflation
    /// is drawn uniformly from `[spike/2, spike)` to model tail jitter
    /// rather than a single bimodal mode.
    pub latency_spike: Span,
    /// Probability that a parking fetcher's doorbell-request flag write is
    /// lost — the fetcher sleeps and the host never learns it must ring.
    pub stall_prob: f64,
    /// Probability that a served request's completion write is dropped.
    pub drop_completion_prob: f64,
    /// Probability that a served request's completion is written twice.
    pub dup_completion_prob: f64,
    /// Probability that a host doorbell MMIO write is lost on the way.
    pub drop_doorbell_prob: f64,
    /// Probability that a TLP is replayed (serialized twice) on the link,
    /// as after an LCRC error and ack-timeout.
    pub tlp_replay_prob: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The inert plan: nothing ever goes wrong.
    pub fn none() -> FaultPlan {
        FaultPlan {
            latency_spike_prob: 0.0,
            latency_spike: Span::ZERO,
            stall_prob: 0.0,
            drop_completion_prob: 0.0,
            dup_completion_prob: 0.0,
            drop_doorbell_prob: 0.0,
            tlp_replay_prob: 0.0,
        }
    }

    /// True if any fault class can fire.
    pub fn is_active(&self) -> bool {
        self.latency_spike_prob > 0.0
            || self.stall_prob > 0.0
            || self.drop_completion_prob > 0.0
            || self.dup_completion_prob > 0.0
            || self.drop_doorbell_prob > 0.0
            || self.tlp_replay_prob > 0.0
    }

    /// Checks that every probability lies in `[0, 1]` and that spike
    /// magnitude is set when spikes are enabled.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("latency_spike_prob", self.latency_spike_prob),
            ("stall_prob", self.stall_prob),
            ("drop_completion_prob", self.drop_completion_prob),
            ("dup_completion_prob", self.dup_completion_prob),
            ("drop_doorbell_prob", self.drop_doorbell_prob),
            ("tlp_replay_prob", self.tlp_replay_prob),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} is outside [0, 1]"));
            }
        }
        if self.latency_spike_prob > 0.0 && self.latency_spike.is_zero() {
            return Err("latency_spike_prob > 0 but latency_spike_ns is zero".into());
        }
        Ok(())
    }

    /// Enables latency spikes: with probability `p`, service time grows by
    /// a uniform draw from `[spike/2, spike)`.
    pub fn with_latency_spikes(mut self, p: f64, spike: Span) -> FaultPlan {
        self.latency_spike_prob = p;
        self.latency_spike = spike;
        self
    }

    /// Enables fetcher stalls (lost doorbell-request flag) with probability `p`.
    pub fn with_stalls(mut self, p: f64) -> FaultPlan {
        self.stall_prob = p;
        self
    }

    /// Enables dropped completions with probability `p`.
    pub fn with_dropped_completions(mut self, p: f64) -> FaultPlan {
        self.drop_completion_prob = p;
        self
    }

    /// Enables duplicated completions with probability `p`.
    pub fn with_dup_completions(mut self, p: f64) -> FaultPlan {
        self.dup_completion_prob = p;
        self
    }

    /// Enables lost doorbells with probability `p`.
    pub fn with_dropped_doorbells(mut self, p: f64) -> FaultPlan {
        self.drop_doorbell_prob = p;
        self
    }

    /// Enables TLP replays with probability `p`.
    pub fn with_tlp_replays(mut self, p: f64) -> FaultPlan {
        self.tlp_replay_prob = p;
        self
    }

    /// Parses a plan from a minimal TOML subset: one `key = value` per
    /// line, `#` comments, blank lines. Probabilities are floats; the
    /// spike magnitude is `latency_spike_ns`, an integer. Unknown keys
    /// are errors so typos fail loudly.
    ///
    /// # Examples
    ///
    /// ```
    /// use kus_sim::fault::FaultPlan;
    ///
    /// let plan = FaultPlan::parse_toml(
    ///     "# chaos plan\nstall_prob = 0.02\nlatency_spike_prob = 0.1\nlatency_spike_ns = 8000\n",
    /// ).unwrap();
    /// assert_eq!(plan.stall_prob, 0.02);
    /// assert_eq!(plan.latency_spike.as_ns(), 8000);
    /// ```
    pub fn parse_toml(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let prob = |v: &str| {
                v.parse::<f64>()
                    .map_err(|e| format!("line {}: bad number `{v}`: {e}", lineno + 1))
            };
            match key {
                "latency_spike_prob" => plan.latency_spike_prob = prob(value)?,
                "latency_spike_ns" => {
                    let ns = value
                        .parse::<u64>()
                        .map_err(|e| format!("line {}: bad integer `{value}`: {e}", lineno + 1))?;
                    plan.latency_spike = Span::from_ns(ns);
                }
                "stall_prob" => plan.stall_prob = prob(value)?,
                "drop_completion_prob" => plan.drop_completion_prob = prob(value)?,
                "dup_completion_prob" => plan.dup_completion_prob = prob(value)?,
                "drop_doorbell_prob" => plan.drop_doorbell_prob = prob(value)?,
                "tlp_replay_prob" => plan.tlp_replay_prob = prob(value)?,
                other => return Err(format!("line {}: unknown key `{other}`", lineno + 1)),
            }
        }
        plan.validate()?;
        Ok(plan)
    }
}

/// Counts of every injected fault, by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Latency spikes applied to device service times.
    pub latency_spikes: Counter,
    /// Fetcher stalls injected (doorbell-request flag writes lost).
    pub stalls: Counter,
    /// Completion writes dropped.
    pub dropped_completions: Counter,
    /// Completion writes duplicated.
    pub dup_completions: Counter,
    /// Host doorbells lost.
    pub dropped_doorbells: Counter,
    /// TLPs replayed on the link.
    pub tlp_replays: Counter,
}

/// Turns a [`FaultPlan`] into concrete per-site decisions.
///
/// Each injection site draws from its own labeled sub-stream of the
/// injector's root RNG, so the schedule of one fault class is independent
/// of how often the others are queried. Sites whose probability is zero
/// never draw at all, which keeps partially-enabled plans deterministic
/// with respect to the disabled classes.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    device_rng: SimRng,
    fetcher_rng: SimRng,
    completion_rng: SimRng,
    doorbell_rng: SimRng,
    link_rng: SimRng,
    /// Per-class injection counts, readable at harvest time.
    pub stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector for `plan`, splitting per-site streams off `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`].
    pub fn new(plan: FaultPlan, rng: &SimRng) -> FaultInjector {
        plan.validate().expect("invalid fault plan");
        FaultInjector {
            plan,
            device_rng: rng.split("fault-device"),
            fetcher_rng: rng.split("fault-fetcher"),
            completion_rng: rng.split("fault-completion"),
            doorbell_rng: rng.split("fault-doorbell"),
            link_rng: rng.split("fault-link"),
            stats: FaultStats::default(),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Service-time inflation for one device request, if this request
    /// spikes. The magnitude is uniform in `[spike/2, spike)`.
    pub fn latency_spike(&mut self) -> Option<Span> {
        if self.plan.latency_spike_prob <= 0.0 {
            return None;
        }
        if !self.device_rng.chance(self.plan.latency_spike_prob) {
            return None;
        }
        self.stats.latency_spikes.incr();
        let max_ps = self.plan.latency_spike.as_ps().max(2);
        let half = max_ps / 2;
        Some(Span::from_ps(half + self.device_rng.below(max_ps - half)))
    }

    /// True if this park's doorbell-request flag write should be lost.
    pub fn fetcher_stall(&mut self) -> bool {
        if self.plan.stall_prob <= 0.0 || !self.fetcher_rng.chance(self.plan.stall_prob) {
            return false;
        }
        self.stats.stalls.incr();
        true
    }

    /// True if this completion write should be dropped.
    pub fn drop_completion(&mut self) -> bool {
        if self.plan.drop_completion_prob <= 0.0
            || !self.completion_rng.chance(self.plan.drop_completion_prob)
        {
            return false;
        }
        self.stats.dropped_completions.incr();
        true
    }

    /// True if this completion write should be duplicated.
    pub fn dup_completion(&mut self) -> bool {
        if self.plan.dup_completion_prob <= 0.0
            || !self.completion_rng.chance(self.plan.dup_completion_prob)
        {
            return false;
        }
        self.stats.dup_completions.incr();
        true
    }

    /// True if this host doorbell should be lost.
    pub fn drop_doorbell(&mut self) -> bool {
        if self.plan.drop_doorbell_prob <= 0.0
            || !self.doorbell_rng.chance(self.plan.drop_doorbell_prob)
        {
            return false;
        }
        self.stats.dropped_doorbells.incr();
        true
    }

    /// True if this TLP should be replayed (serialized a second time).
    pub fn tlp_replay(&mut self) -> bool {
        if self.plan.tlp_replay_prob <= 0.0 || !self.link_rng.chance(self.plan.tlp_replay_prob) {
            return false;
        }
        self.stats.tlp_replays.incr();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic_plan() -> FaultPlan {
        FaultPlan::none()
            .with_latency_spikes(0.3, Span::from_us(2))
            .with_stalls(0.2)
            .with_dropped_completions(0.2)
            .with_dup_completions(0.2)
            .with_dropped_doorbells(0.2)
            .with_tlp_replays(0.2)
    }

    #[test]
    fn none_is_inactive_and_valid() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn builders_activate() {
        assert!(FaultPlan::none().with_stalls(0.5).is_active());
        assert!(FaultPlan::none().with_tlp_replays(1e-9).is_active());
    }

    #[test]
    fn validate_rejects_out_of_range() {
        assert!(FaultPlan::none().with_stalls(1.5).validate().is_err());
        assert!(FaultPlan::none().with_dup_completions(-0.1).validate().is_err());
        // Spikes enabled without a magnitude make no sense.
        let p = FaultPlan { latency_spike_prob: 0.1, ..FaultPlan::none() };
        assert!(p.validate().is_err());
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = chaotic_plan();
        let root = SimRng::from_seed(77);
        let mut a = FaultInjector::new(plan, &root);
        let mut b = FaultInjector::new(plan, &root);
        for _ in 0..500 {
            assert_eq!(a.latency_spike(), b.latency_spike());
            assert_eq!(a.fetcher_stall(), b.fetcher_stall());
            assert_eq!(a.drop_completion(), b.drop_completion());
            assert_eq!(a.dup_completion(), b.dup_completion());
            assert_eq!(a.drop_doorbell(), b.drop_doorbell());
            assert_eq!(a.tlp_replay(), b.tlp_replay());
        }
        assert_eq!(a.stats, b.stats);
        assert!(a.stats.latency_spikes.get() > 0, "plan actually fired");
    }

    #[test]
    fn sites_are_independent_streams() {
        let plan = chaotic_plan();
        let root = SimRng::from_seed(42);
        // Injector A queries only stalls; injector B interleaves every class.
        let mut a = FaultInjector::new(plan, &root);
        let mut b = FaultInjector::new(plan, &root);
        let mut stalls_a = Vec::new();
        for _ in 0..200 {
            stalls_a.push(a.fetcher_stall());
        }
        let mut stalls_b = Vec::new();
        for _ in 0..200 {
            let _ = b.latency_spike();
            let _ = b.drop_completion();
            stalls_b.push(b.fetcher_stall());
            let _ = b.tlp_replay();
        }
        assert_eq!(stalls_a, stalls_b, "stall stream unaffected by other sites");
    }

    #[test]
    fn zero_probability_class_never_draws() {
        // Only stalls enabled: the stall stream must match a plan where
        // every other class is also enabled but never queried.
        let stall_only = FaultPlan::none().with_stalls(0.5);
        let root = SimRng::from_seed(9);
        let mut inj = FaultInjector::new(stall_only, &root);
        // Query disabled classes heavily; they must not consume anything.
        for _ in 0..100 {
            assert_eq!(inj.latency_spike(), None);
            assert!(!inj.drop_completion());
            assert!(!inj.tlp_replay());
        }
        let mut fresh = FaultInjector::new(stall_only, &root);
        for _ in 0..100 {
            assert_eq!(inj.fetcher_stall(), fresh.fetcher_stall());
        }
        assert_eq!(inj.stats.dropped_completions.get(), 0);
    }

    #[test]
    fn spike_magnitude_is_tail_jitter() {
        let plan = FaultPlan::none().with_latency_spikes(1.0, Span::from_us(2));
        let mut inj = FaultInjector::new(plan, &SimRng::from_seed(3));
        for _ in 0..200 {
            let s = inj.latency_spike().expect("p=1 always spikes");
            assert!(s >= Span::from_us(1) && s < Span::from_us(2), "{s:?}");
        }
    }

    #[test]
    fn parse_toml_round_trip() {
        let text = "\n# a comment\nlatency_spike_prob = 0.25 # trailing\nlatency_spike_ns = 4000\ndrop_completion_prob = 0.01\n";
        let plan = FaultPlan::parse_toml(text).unwrap();
        assert_eq!(plan.latency_spike_prob, 0.25);
        assert_eq!(plan.latency_spike, Span::from_ns(4000));
        assert_eq!(plan.drop_completion_prob, 0.01);
        assert!(!plan.is_active() || plan.validate().is_ok());
    }

    #[test]
    fn parse_toml_rejects_unknown_and_malformed() {
        assert!(FaultPlan::parse_toml("stall_chance = 0.1\n").is_err());
        assert!(FaultPlan::parse_toml("stall_prob 0.1\n").is_err());
        assert!(FaultPlan::parse_toml("stall_prob = lots\n").is_err());
        assert!(FaultPlan::parse_toml("stall_prob = 2.0\n").is_err(), "validated");
    }
}
