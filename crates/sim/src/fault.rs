//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes *what* can go wrong and how often; a
//! [`FaultInjector`] turns the plan into concrete yes/no decisions drawn
//! from labeled [`SimRng`](crate::rng::SimRng) sub-streams, one per
//! injection site. Because each site owns its own stream, adding or
//! removing one fault class never perturbs the draws of another — the
//! same seed and plan always produce the same fault schedule.
//!
//! The injector is pure decision logic: the components being faulted
//! (link, device, fetcher, doorbell path) query it at their injection
//! points and act on the answer. Every positive decision is counted in
//! [`FaultStats`] so runs can assert on exact fault counts.
//!
//! A plan with all probabilities at zero is *inert*: the injector draws
//! nothing from any stream, so zero-plan runs are bit-for-bit identical
//! to runs without the fault layer at all.

use crate::rng::SimRng;
use crate::stats::Counter;
use crate::time::Span;

/// Probabilities and magnitudes for every injectable fault class.
///
/// All fields default to "off"; compose a plan with the `with_*` builders
/// or parse one from TOML with [`FaultPlan::parse_toml`].
///
/// # Examples
///
/// ```
/// use kus_sim::fault::FaultPlan;
///
/// let plan = FaultPlan::none().with_stalls(0.01).with_dropped_completions(0.001);
/// assert!(plan.is_active());
/// assert!(plan.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability that a device request's service time is inflated.
    pub latency_spike_prob: f64,
    /// Maximum extra service time added by a spike; the actual inflation
    /// is drawn uniformly from `[spike/2, spike)` to model tail jitter
    /// rather than a single bimodal mode.
    pub latency_spike: Span,
    /// Probability that a parking fetcher's doorbell-request flag write is
    /// lost — the fetcher sleeps and the host never learns it must ring.
    pub stall_prob: f64,
    /// Probability that a served request's completion write is dropped.
    pub drop_completion_prob: f64,
    /// Probability that a served request's completion is written twice.
    pub dup_completion_prob: f64,
    /// Probability that a host doorbell MMIO write is lost on the way.
    pub drop_doorbell_prob: f64,
    /// Probability that a TLP is replayed (serialized twice) on the link,
    /// as after an LCRC error and ack-timeout.
    pub tlp_replay_prob: f64,
    /// Probability that a serving fiber crashes at dispatch: the request
    /// it held is re-queued and the fiber pays `fiber_respawn` before it
    /// can serve again.
    pub fiber_crash_prob: f64,
    /// Respawn cost a crashed fiber pays before rejoining the run ring.
    pub fiber_respawn: Span,
    /// Probability that the dispatcher stalls before handing a request to
    /// its service (e.g. a preempted dispatch thread).
    pub dispatcher_stall_prob: f64,
    /// Extra dispatch latency paid when a dispatcher stall fires.
    pub dispatcher_stall: Span,
    /// Period of deterministic core-freeze windows: window `k` covers
    /// `[k·period, k·period + freeze_len)` for `k = 1, 2, …` relative to
    /// the serving start. Zero disables freeze windows.
    pub freeze_period: Span,
    /// Length of each freeze window.
    pub freeze_len: Span,
    /// Extra per-dispatch overhead paid while inside a freeze window —
    /// models the core running at a crawl (thermal throttle, noisy
    /// neighbour) rather than stopping outright.
    pub freeze_stall: Span,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The inert plan: nothing ever goes wrong.
    pub fn none() -> FaultPlan {
        FaultPlan {
            latency_spike_prob: 0.0,
            latency_spike: Span::ZERO,
            stall_prob: 0.0,
            drop_completion_prob: 0.0,
            dup_completion_prob: 0.0,
            drop_doorbell_prob: 0.0,
            tlp_replay_prob: 0.0,
            fiber_crash_prob: 0.0,
            fiber_respawn: Span::ZERO,
            dispatcher_stall_prob: 0.0,
            dispatcher_stall: Span::ZERO,
            freeze_period: Span::ZERO,
            freeze_len: Span::ZERO,
            freeze_stall: Span::ZERO,
        }
    }

    /// True if any fault class can fire.
    pub fn is_active(&self) -> bool {
        self.latency_spike_prob > 0.0
            || self.stall_prob > 0.0
            || self.drop_completion_prob > 0.0
            || self.dup_completion_prob > 0.0
            || self.drop_doorbell_prob > 0.0
            || self.tlp_replay_prob > 0.0
            || self.serving_active()
    }

    /// True if any serving-layer fault class (fiber crash, dispatcher
    /// stall, freeze window) can fire.
    pub fn serving_active(&self) -> bool {
        self.fiber_crash_prob > 0.0
            || self.dispatcher_stall_prob > 0.0
            || !self.freeze_period.is_zero()
    }

    /// Checks that every probability lies in `[0, 1]` and that spike
    /// magnitude is set when spikes are enabled.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("latency_spike_prob", self.latency_spike_prob),
            ("stall_prob", self.stall_prob),
            ("drop_completion_prob", self.drop_completion_prob),
            ("dup_completion_prob", self.dup_completion_prob),
            ("drop_doorbell_prob", self.drop_doorbell_prob),
            ("tlp_replay_prob", self.tlp_replay_prob),
            ("fiber_crash_prob", self.fiber_crash_prob),
            ("dispatcher_stall_prob", self.dispatcher_stall_prob),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} is outside [0, 1]"));
            }
        }
        if self.latency_spike_prob > 0.0 && self.latency_spike.is_zero() {
            return Err("latency_spike_prob > 0 but latency_spike_ns is zero".into());
        }
        if self.fiber_crash_prob > 0.0 && self.fiber_respawn.is_zero() {
            return Err("fiber_crash_prob > 0 but fiber_respawn_ns is zero".into());
        }
        if self.dispatcher_stall_prob > 0.0 && self.dispatcher_stall.is_zero() {
            return Err("dispatcher_stall_prob > 0 but dispatcher_stall_ns is zero".into());
        }
        let freeze_on = [self.freeze_period, self.freeze_len, self.freeze_stall];
        if freeze_on.iter().any(|s| !s.is_zero()) {
            if freeze_on.iter().any(|s| s.is_zero()) {
                return Err(
                    "freeze windows need all of freeze_period_ns, freeze_len_ns, freeze_stall_ns"
                        .into(),
                );
            }
            if self.freeze_len > self.freeze_period {
                return Err("freeze_len_ns exceeds freeze_period_ns".into());
            }
        }
        Ok(())
    }

    /// Enables latency spikes: with probability `p`, service time grows by
    /// a uniform draw from `[spike/2, spike)`.
    pub fn with_latency_spikes(mut self, p: f64, spike: Span) -> FaultPlan {
        self.latency_spike_prob = p;
        self.latency_spike = spike;
        self
    }

    /// Enables fetcher stalls (lost doorbell-request flag) with probability `p`.
    pub fn with_stalls(mut self, p: f64) -> FaultPlan {
        self.stall_prob = p;
        self
    }

    /// Enables dropped completions with probability `p`.
    pub fn with_dropped_completions(mut self, p: f64) -> FaultPlan {
        self.drop_completion_prob = p;
        self
    }

    /// Enables duplicated completions with probability `p`.
    pub fn with_dup_completions(mut self, p: f64) -> FaultPlan {
        self.dup_completion_prob = p;
        self
    }

    /// Enables lost doorbells with probability `p`.
    pub fn with_dropped_doorbells(mut self, p: f64) -> FaultPlan {
        self.drop_doorbell_prob = p;
        self
    }

    /// Enables TLP replays with probability `p`.
    pub fn with_tlp_replays(mut self, p: f64) -> FaultPlan {
        self.tlp_replay_prob = p;
        self
    }

    /// Enables serving-fiber crashes: with probability `p` per dispatch,
    /// the fiber dies, its request is re-queued, and the fiber pays
    /// `respawn` before serving again.
    pub fn with_fiber_crashes(mut self, p: f64, respawn: Span) -> FaultPlan {
        self.fiber_crash_prob = p;
        self.fiber_respawn = respawn;
        self
    }

    /// Enables dispatcher stalls: with probability `p` per dispatch, an
    /// extra `stall` of latency is paid before the service runs.
    pub fn with_dispatcher_stalls(mut self, p: f64, stall: Span) -> FaultPlan {
        self.dispatcher_stall_prob = p;
        self.dispatcher_stall = stall;
        self
    }

    /// Enables deterministic freeze windows: every `period` after serving
    /// starts, the core crawls for `len`, paying `stall` extra per
    /// dispatch inside the window.
    pub fn with_freeze_windows(mut self, period: Span, len: Span, stall: Span) -> FaultPlan {
        self.freeze_period = period;
        self.freeze_len = len;
        self.freeze_stall = stall;
        self
    }

    /// Parses a plan from a minimal TOML subset: one `key = value` per
    /// line, `#` comments, blank lines. Probabilities are floats; the
    /// spike magnitude is `latency_spike_ns`, an integer. Unknown keys
    /// are errors so typos fail loudly.
    ///
    /// # Examples
    ///
    /// ```
    /// use kus_sim::fault::FaultPlan;
    ///
    /// let plan = FaultPlan::parse_toml(
    ///     "# chaos plan\nstall_prob = 0.02\nlatency_spike_prob = 0.1\nlatency_spike_ns = 8000\n",
    /// ).unwrap();
    /// assert_eq!(plan.stall_prob, 0.02);
    /// assert_eq!(plan.latency_spike.as_ns(), 8000);
    /// ```
    pub fn parse_toml(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let prob = |v: &str| {
                v.parse::<f64>()
                    .map_err(|e| format!("line {}: bad number `{v}`: {e}", lineno + 1))
            };
            let ns = |v: &str| {
                v.parse::<u64>()
                    .map_err(|e| format!("line {}: bad integer `{v}`: {e}", lineno + 1))
            };
            match key {
                "latency_spike_prob" => plan.latency_spike_prob = prob(value)?,
                "latency_spike_ns" => plan.latency_spike = Span::from_ns(ns(value)?),
                "stall_prob" => plan.stall_prob = prob(value)?,
                "drop_completion_prob" => plan.drop_completion_prob = prob(value)?,
                "dup_completion_prob" => plan.dup_completion_prob = prob(value)?,
                "drop_doorbell_prob" => plan.drop_doorbell_prob = prob(value)?,
                "tlp_replay_prob" => plan.tlp_replay_prob = prob(value)?,
                "fiber_crash_prob" => plan.fiber_crash_prob = prob(value)?,
                "fiber_respawn_ns" => plan.fiber_respawn = Span::from_ns(ns(value)?),
                "dispatcher_stall_prob" => plan.dispatcher_stall_prob = prob(value)?,
                "dispatcher_stall_ns" => plan.dispatcher_stall = Span::from_ns(ns(value)?),
                "freeze_period_ns" => plan.freeze_period = Span::from_ns(ns(value)?),
                "freeze_len_ns" => plan.freeze_len = Span::from_ns(ns(value)?),
                "freeze_stall_ns" => plan.freeze_stall = Span::from_ns(ns(value)?),
                other => return Err(format!("line {}: unknown key `{other}`", lineno + 1)),
            }
        }
        plan.validate()?;
        Ok(plan)
    }
}

/// Counts of every injected fault, by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Latency spikes applied to device service times.
    pub latency_spikes: Counter,
    /// Fetcher stalls injected (doorbell-request flag writes lost).
    pub stalls: Counter,
    /// Completion writes dropped.
    pub dropped_completions: Counter,
    /// Completion writes duplicated.
    pub dup_completions: Counter,
    /// Host doorbells lost.
    pub dropped_doorbells: Counter,
    /// TLPs replayed on the link.
    pub tlp_replays: Counter,
    /// Serving fibers crashed at dispatch.
    pub fiber_crashes: Counter,
    /// Dispatcher stalls injected.
    pub dispatcher_stalls: Counter,
    /// Dispatches slowed by a freeze window.
    pub freeze_stalls: Counter,
}

/// Turns a [`FaultPlan`] into concrete per-site decisions.
///
/// Each injection site draws from its own labeled sub-stream of the
/// injector's root RNG, so the schedule of one fault class is independent
/// of how often the others are queried. Sites whose probability is zero
/// never draw at all, which keeps partially-enabled plans deterministic
/// with respect to the disabled classes.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    device_rng: SimRng,
    fetcher_rng: SimRng,
    completion_rng: SimRng,
    doorbell_rng: SimRng,
    link_rng: SimRng,
    crash_rng: SimRng,
    dispatch_rng: SimRng,
    /// Per-class injection counts, readable at harvest time.
    pub stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector for `plan`, splitting per-site streams off `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`].
    pub fn new(plan: FaultPlan, rng: &SimRng) -> FaultInjector {
        plan.validate().expect("invalid fault plan");
        FaultInjector {
            plan,
            device_rng: rng.split("fault-device"),
            fetcher_rng: rng.split("fault-fetcher"),
            completion_rng: rng.split("fault-completion"),
            doorbell_rng: rng.split("fault-doorbell"),
            link_rng: rng.split("fault-link"),
            crash_rng: rng.split("fault-fiber-crash"),
            dispatch_rng: rng.split("fault-dispatcher"),
            stats: FaultStats::default(),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Service-time inflation for one device request, if this request
    /// spikes. The magnitude is uniform in `[spike/2, spike)`.
    pub fn latency_spike(&mut self) -> Option<Span> {
        if self.plan.latency_spike_prob <= 0.0 {
            return None;
        }
        if !self.device_rng.chance(self.plan.latency_spike_prob) {
            return None;
        }
        self.stats.latency_spikes.incr();
        let max_ps = self.plan.latency_spike.as_ps().max(2);
        let half = max_ps / 2;
        Some(Span::from_ps(half + self.device_rng.below(max_ps - half)))
    }

    /// True if this park's doorbell-request flag write should be lost.
    pub fn fetcher_stall(&mut self) -> bool {
        if self.plan.stall_prob <= 0.0 || !self.fetcher_rng.chance(self.plan.stall_prob) {
            return false;
        }
        self.stats.stalls.incr();
        true
    }

    /// True if this completion write should be dropped.
    pub fn drop_completion(&mut self) -> bool {
        if self.plan.drop_completion_prob <= 0.0
            || !self.completion_rng.chance(self.plan.drop_completion_prob)
        {
            return false;
        }
        self.stats.dropped_completions.incr();
        true
    }

    /// True if this completion write should be duplicated.
    pub fn dup_completion(&mut self) -> bool {
        if self.plan.dup_completion_prob <= 0.0
            || !self.completion_rng.chance(self.plan.dup_completion_prob)
        {
            return false;
        }
        self.stats.dup_completions.incr();
        true
    }

    /// True if this host doorbell should be lost.
    pub fn drop_doorbell(&mut self) -> bool {
        if self.plan.drop_doorbell_prob <= 0.0
            || !self.doorbell_rng.chance(self.plan.drop_doorbell_prob)
        {
            return false;
        }
        self.stats.dropped_doorbells.incr();
        true
    }

    /// True if this TLP should be replayed (serialized a second time).
    pub fn tlp_replay(&mut self) -> bool {
        if self.plan.tlp_replay_prob <= 0.0 || !self.link_rng.chance(self.plan.tlp_replay_prob) {
            return false;
        }
        self.stats.tlp_replays.incr();
        true
    }

    /// Respawn cost if this dispatch's fiber crashes, else `None`.
    pub fn fiber_crash(&mut self) -> Option<Span> {
        if self.plan.fiber_crash_prob <= 0.0 || !self.crash_rng.chance(self.plan.fiber_crash_prob) {
            return None;
        }
        self.stats.fiber_crashes.incr();
        Some(self.plan.fiber_respawn)
    }

    /// Extra dispatch latency if the dispatcher stalls here, else `None`.
    pub fn dispatcher_stall(&mut self) -> Option<Span> {
        if self.plan.dispatcher_stall_prob <= 0.0
            || !self.dispatch_rng.chance(self.plan.dispatcher_stall_prob)
        {
            return None;
        }
        self.stats.dispatcher_stalls.incr();
        Some(self.plan.dispatcher_stall)
    }

    /// Extra per-dispatch overhead if `since_start` falls inside a freeze
    /// window, else `None`. Freeze windows are purely deterministic —
    /// window `k` covers `[k·period, k·period + len)` for `k ≥ 1` — so no
    /// RNG stream is consumed.
    pub fn freeze_overhead(&mut self, since_start: Span) -> Option<Span> {
        self.freeze_window(since_start)?;
        self.stats.freeze_stalls.incr();
        Some(self.plan.freeze_stall)
    }

    /// The index of the freeze window covering `since_start`, if any
    /// (`1` for the first window). Does not count as an injection.
    pub fn freeze_window(&self, since_start: Span) -> Option<u64> {
        let period = self.plan.freeze_period.as_ps();
        if period == 0 {
            return None;
        }
        let k = since_start.as_ps() / period;
        let into = since_start.as_ps() - k * period;
        (k >= 1 && into < self.plan.freeze_len.as_ps()).then_some(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic_plan() -> FaultPlan {
        FaultPlan::none()
            .with_latency_spikes(0.3, Span::from_us(2))
            .with_stalls(0.2)
            .with_dropped_completions(0.2)
            .with_dup_completions(0.2)
            .with_dropped_doorbells(0.2)
            .with_tlp_replays(0.2)
    }

    #[test]
    fn none_is_inactive_and_valid() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn builders_activate() {
        assert!(FaultPlan::none().with_stalls(0.5).is_active());
        assert!(FaultPlan::none().with_tlp_replays(1e-9).is_active());
    }

    #[test]
    fn validate_rejects_out_of_range() {
        assert!(FaultPlan::none().with_stalls(1.5).validate().is_err());
        assert!(FaultPlan::none().with_dup_completions(-0.1).validate().is_err());
        // Spikes enabled without a magnitude make no sense.
        let p = FaultPlan { latency_spike_prob: 0.1, ..FaultPlan::none() };
        assert!(p.validate().is_err());
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = chaotic_plan();
        let root = SimRng::from_seed(77);
        let mut a = FaultInjector::new(plan, &root);
        let mut b = FaultInjector::new(plan, &root);
        for _ in 0..500 {
            assert_eq!(a.latency_spike(), b.latency_spike());
            assert_eq!(a.fetcher_stall(), b.fetcher_stall());
            assert_eq!(a.drop_completion(), b.drop_completion());
            assert_eq!(a.dup_completion(), b.dup_completion());
            assert_eq!(a.drop_doorbell(), b.drop_doorbell());
            assert_eq!(a.tlp_replay(), b.tlp_replay());
        }
        assert_eq!(a.stats, b.stats);
        assert!(a.stats.latency_spikes.get() > 0, "plan actually fired");
    }

    #[test]
    fn sites_are_independent_streams() {
        let plan = chaotic_plan();
        let root = SimRng::from_seed(42);
        // Injector A queries only stalls; injector B interleaves every class.
        let mut a = FaultInjector::new(plan, &root);
        let mut b = FaultInjector::new(plan, &root);
        let mut stalls_a = Vec::new();
        for _ in 0..200 {
            stalls_a.push(a.fetcher_stall());
        }
        let mut stalls_b = Vec::new();
        for _ in 0..200 {
            let _ = b.latency_spike();
            let _ = b.drop_completion();
            stalls_b.push(b.fetcher_stall());
            let _ = b.tlp_replay();
        }
        assert_eq!(stalls_a, stalls_b, "stall stream unaffected by other sites");
    }

    #[test]
    fn zero_probability_class_never_draws() {
        // Only stalls enabled: the stall stream must match a plan where
        // every other class is also enabled but never queried.
        let stall_only = FaultPlan::none().with_stalls(0.5);
        let root = SimRng::from_seed(9);
        let mut inj = FaultInjector::new(stall_only, &root);
        // Query disabled classes heavily; they must not consume anything.
        for _ in 0..100 {
            assert_eq!(inj.latency_spike(), None);
            assert!(!inj.drop_completion());
            assert!(!inj.tlp_replay());
        }
        let mut fresh = FaultInjector::new(stall_only, &root);
        for _ in 0..100 {
            assert_eq!(inj.fetcher_stall(), fresh.fetcher_stall());
        }
        assert_eq!(inj.stats.dropped_completions.get(), 0);
    }

    #[test]
    fn spike_magnitude_is_tail_jitter() {
        let plan = FaultPlan::none().with_latency_spikes(1.0, Span::from_us(2));
        let mut inj = FaultInjector::new(plan, &SimRng::from_seed(3));
        for _ in 0..200 {
            let s = inj.latency_spike().expect("p=1 always spikes");
            assert!(s >= Span::from_us(1) && s < Span::from_us(2), "{s:?}");
        }
    }

    #[test]
    fn parse_toml_round_trip() {
        let text = "\n# a comment\nlatency_spike_prob = 0.25 # trailing\nlatency_spike_ns = 4000\ndrop_completion_prob = 0.01\n";
        let plan = FaultPlan::parse_toml(text).unwrap();
        assert_eq!(plan.latency_spike_prob, 0.25);
        assert_eq!(plan.latency_spike, Span::from_ns(4000));
        assert_eq!(plan.drop_completion_prob, 0.01);
        assert!(!plan.is_active() || plan.validate().is_ok());
    }

    #[test]
    fn parse_toml_rejects_unknown_and_malformed() {
        assert!(FaultPlan::parse_toml("stall_chance = 0.1\n").is_err());
        assert!(FaultPlan::parse_toml("stall_prob 0.1\n").is_err());
        assert!(FaultPlan::parse_toml("stall_prob = lots\n").is_err());
        assert!(FaultPlan::parse_toml("stall_prob = 2.0\n").is_err(), "validated");
    }

    #[test]
    fn serving_classes_validate() {
        // Probabilities without magnitudes are rejected.
        let p = FaultPlan { fiber_crash_prob: 0.1, ..FaultPlan::none() };
        assert!(p.validate().is_err());
        let p = FaultPlan { dispatcher_stall_prob: 0.1, ..FaultPlan::none() };
        assert!(p.validate().is_err());
        // Freeze fields are all-or-nothing, with len bounded by period.
        let p = FaultPlan { freeze_period: Span::from_us(500), ..FaultPlan::none() };
        assert!(p.validate().is_err());
        let p = FaultPlan::none().with_freeze_windows(
            Span::from_us(100),
            Span::from_us(200),
            Span::from_us(5),
        );
        assert!(p.validate().is_err(), "len > period");
        let ok = FaultPlan::none()
            .with_fiber_crashes(0.01, Span::from_us(50))
            .with_dispatcher_stalls(0.02, Span::from_us(10))
            .with_freeze_windows(Span::from_us(500), Span::from_us(100), Span::from_us(20));
        assert!(ok.validate().is_ok());
        assert!(ok.is_active() && ok.serving_active());
    }

    #[test]
    fn serving_classes_parse_toml() {
        let text = "fiber_crash_prob = 0.01\nfiber_respawn_ns = 50000\n\
                    dispatcher_stall_prob = 0.02\ndispatcher_stall_ns = 10000\n\
                    freeze_period_ns = 500000\nfreeze_len_ns = 100000\nfreeze_stall_ns = 20000\n";
        let plan = FaultPlan::parse_toml(text).unwrap();
        assert_eq!(plan.fiber_crash_prob, 0.01);
        assert_eq!(plan.fiber_respawn, Span::from_us(50));
        assert_eq!(plan.dispatcher_stall, Span::from_us(10));
        assert_eq!(plan.freeze_period, Span::from_us(500));
        assert_eq!(plan.freeze_len, Span::from_us(100));
        assert_eq!(plan.freeze_stall, Span::from_us(20));
    }

    #[test]
    fn freeze_windows_are_deterministic_and_skip_warmup() {
        let plan =
            FaultPlan::none().with_freeze_windows(Span::from_us(500), Span::from_us(100), Span::from_us(20));
        let mut inj = FaultInjector::new(plan, &SimRng::from_seed(1));
        // Window 0 (warmup) never freezes.
        assert_eq!(inj.freeze_window(Span::from_us(50)), None);
        assert_eq!(inj.freeze_window(Span::from_us(499)), None);
        // Window 1: [500, 600) µs.
        assert_eq!(inj.freeze_window(Span::from_us(500)), Some(1));
        assert_eq!(inj.freeze_window(Span::from_us(599)), Some(1));
        assert_eq!(inj.freeze_window(Span::from_us(600)), None);
        assert_eq!(inj.freeze_window(Span::from_us(1001)), Some(2));
        assert_eq!(inj.freeze_overhead(Span::from_us(550)), Some(Span::from_us(20)));
        assert_eq!(inj.freeze_overhead(Span::from_us(650)), None);
        assert_eq!(inj.stats.freeze_stalls.get(), 1);
    }

    #[test]
    fn serving_sites_are_independent_streams() {
        let plan = chaotic_plan()
            .with_fiber_crashes(0.2, Span::from_us(50))
            .with_dispatcher_stalls(0.2, Span::from_us(10));
        let root = SimRng::from_seed(13);
        let mut a = FaultInjector::new(plan, &root);
        let mut b = FaultInjector::new(plan, &root);
        let crashes_a: Vec<_> = (0..200).map(|_| a.fiber_crash()).collect();
        let crashes_b: Vec<_> = (0..200)
            .map(|_| {
                let _ = b.latency_spike();
                let _ = b.dispatcher_stall();
                b.fiber_crash()
            })
            .collect();
        assert_eq!(crashes_a, crashes_b, "crash stream unaffected by other sites");
        assert!(a.stats.fiber_crashes.get() > 0);
    }
}
