//! Measurement primitives: counters, gauges with time-weighted averages,
//! histograms, and span accumulators.
//!
//! These are deliberately simple value types; components embed them directly
//! and experiments read them out after a run.

use std::fmt;

use crate::time::{Span, Time};

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use kus_sim::stats::Counter;
///
/// let mut c = Counter::default();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increments by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An occupancy gauge that tracks the time-weighted average and maximum of an
/// integer level (e.g., queue occupancy).
///
/// Call [`set`](Gauge::set) whenever the level changes; the gauge integrates
/// level × time between updates.
///
/// # Examples
///
/// ```
/// use kus_sim::stats::Gauge;
/// use kus_sim::time::{Span, Time};
///
/// let mut g = Gauge::new();
/// g.set(Time::ZERO, 2);
/// g.set(Time::ZERO + Span::from_ns(10), 4);
/// assert_eq!(g.max(), 4);
/// assert!((g.time_weighted_avg(Time::ZERO + Span::from_ns(20)) - 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauge {
    level: u64,
    max: u64,
    last_change: Time,
    weighted_ps: u128,
}

impl Gauge {
    /// Creates a gauge at level zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Records that the level changed to `level` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update.
    pub fn set(&mut self, now: Time, level: u64) {
        assert!(now >= self.last_change, "gauge updated out of order");
        let dt = (now - self.last_change).as_ps();
        self.weighted_ps += self.level as u128 * dt as u128;
        self.last_change = now;
        self.level = level;
        self.max = self.max.max(level);
    }

    /// Adjusts the level by a signed delta at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if the level would underflow.
    pub fn adjust(&mut self, now: Time, delta: i64) {
        let next = if delta >= 0 {
            self.level + delta as u64
        } else {
            self.level.checked_sub((-delta) as u64).expect("gauge underflow")
        };
        self.set(now, next);
    }

    /// Current level.
    pub fn level(&self) -> u64 {
        self.level
    }

    /// Maximum level ever observed.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Time-weighted average level over `[0, now]`.
    pub fn time_weighted_avg(&self, now: Time) -> f64 {
        let total = now.as_ps();
        if total == 0 {
            return self.level as f64;
        }
        let tail = self.level as u128 * now.saturating_since(self.last_change).as_ps() as u128;
        (self.weighted_ps + tail) as f64 / total as f64
    }
}

/// A fixed-bucket histogram of [`Span`] samples (log2 nanosecond buckets),
/// also tracking exact count, sum, min, and max.
///
/// # Examples
///
/// ```
/// use kus_sim::stats::SpanHistogram;
/// use kus_sim::time::Span;
///
/// let mut h = SpanHistogram::new();
/// h.record(Span::from_ns(100));
/// h.record(Span::from_ns(300));
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.mean(), Span::from_ns(200));
/// assert!(h.quantile(0.99) >= Span::from_ns(256));
/// ```
#[derive(Debug, Clone)]
pub struct SpanHistogram {
    /// bucket i counts samples with ns in [2^(i-1), 2^i), bucket 0 is [0,1).
    buckets: Vec<u64>,
    count: u64,
    sum: Span,
    min: Span,
    max: Span,
}

const SPAN_BUCKETS: usize = 48;

impl Default for SpanHistogram {
    fn default() -> Self {
        SpanHistogram::new()
    }
}

impl SpanHistogram {
    /// Creates an empty histogram.
    pub fn new() -> SpanHistogram {
        SpanHistogram {
            buckets: vec![0; SPAN_BUCKETS],
            count: 0,
            sum: Span::ZERO,
            min: Span::from_ps(u64::MAX),
            max: Span::ZERO,
        }
    }

    fn bucket_of(span: Span) -> usize {
        let ns = span.as_ns();
        if ns == 0 {
            0
        } else {
            ((64 - ns.leading_zeros()) as usize).min(SPAN_BUCKETS - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, span: Span) {
        self.buckets[Self::bucket_of(span)] += 1;
        self.count += 1;
        self.sum += span;
        self.min = self.min.min(span);
        self.max = self.max.max(span);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> Span {
        self.sum
    }

    /// Exact arithmetic mean (zero if empty).
    pub fn mean(&self) -> Span {
        if self.count == 0 {
            Span::ZERO
        } else {
            self.sum / self.count
        }
    }

    /// Smallest sample (zero if empty).
    pub fn min(&self) -> Span {
        if self.count == 0 {
            Span::ZERO
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> Span {
        self.max
    }

    /// Merges another histogram into this one (bucket-wise).
    pub fn merge(&mut self, other: &SpanHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// An upper bound for the `q`-quantile, at bucket resolution.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Span {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return Span::ZERO;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper_ns = if i == 0 { 1 } else { 1u64 << i };
                return Span::from_ns(upper_ns).min(self.max);
            }
        }
        self.max
    }
}

/// An HDR-style log-linear histogram of [`Span`] samples, precise enough
/// for tail quantiles (p99/p999) where [`SpanHistogram`]'s log2 buckets are
/// too coarse.
///
/// Values are bucketed in picoseconds: 64 exact buckets below 64 ps, then
/// 64 linear sub-buckets per octave, so every reported quantile is an upper
/// bound within a relative error of 1/64 (~1.6%). Buckets are fixed, which
/// makes merging shards a bucket-wise add: merge order can never change a
/// reported quantile.
///
/// # Examples
///
/// ```
/// use kus_sim::stats::HdrHistogram;
/// use kus_sim::time::Span;
///
/// let mut h = HdrHistogram::new();
/// for us in 1..=1000u64 {
///     h.record(Span::from_us(us));
/// }
/// let p99 = h.quantile(0.99);
/// assert!(p99 >= Span::from_us(990) && p99 <= Span::from_us(1006));
/// ```
#[derive(Debug, Clone)]
pub struct HdrHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: Span,
    min: Span,
    max: Span,
}

/// Sub-bucket resolution: 2^6 linear buckets per octave.
const HDR_SUB_BITS: u32 = 6;
/// 64 exact buckets + 58 octaves × 64 sub-buckets (exponents 6..=63).
const HDR_BUCKETS: usize = 64 + (64 - HDR_SUB_BITS as usize - 1) * 64;

impl Default for HdrHistogram {
    fn default() -> Self {
        HdrHistogram::new()
    }
}

impl HdrHistogram {
    /// Creates an empty histogram.
    pub fn new() -> HdrHistogram {
        HdrHistogram {
            buckets: vec![0; HDR_BUCKETS],
            count: 0,
            sum: Span::ZERO,
            min: Span::from_ps(u64::MAX),
            max: Span::ZERO,
        }
    }

    fn bucket_of(ps: u64) -> usize {
        if ps < 64 {
            ps as usize
        } else {
            let exp = 63 - ps.leading_zeros();
            let sub = ((ps >> (exp - HDR_SUB_BITS)) & 63) as usize;
            (((exp - HDR_SUB_BITS + 1) as usize) << 6) | sub
        }
    }

    /// The largest value a bucket contains — what quantiles report, so they
    /// are always upper bounds.
    fn bucket_upper(idx: usize) -> u64 {
        if idx < 64 {
            idx as u64
        } else {
            let tier = (idx >> 6) as u32;
            let sub = (idx & 63) as u64;
            let shift = tier - 1;
            ((64 + sub) << shift) + (1u64 << shift) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, span: Span) {
        self.buckets[Self::bucket_of(span.as_ps())] += 1;
        self.count += 1;
        self.sum += span;
        self.min = self.min.min(span);
        self.max = self.max.max(span);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> Span {
        self.sum
    }

    /// Exact arithmetic mean (zero if empty).
    pub fn mean(&self) -> Span {
        if self.count == 0 {
            Span::ZERO
        } else {
            self.sum / self.count
        }
    }

    /// Smallest sample (zero if empty).
    pub fn min(&self) -> Span {
        if self.count == 0 {
            Span::ZERO
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> Span {
        self.max
    }

    /// Merges another histogram into this one (bucket-wise, exact).
    pub fn merge(&mut self, other: &HdrHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// An upper bound for the `q`-quantile, within 1/64 relative error
    /// (exact below 64 ps), clamped to the exact maximum.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Span {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return Span::ZERO;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Span::from_ps(Self::bucket_upper(i)).min(self.max);
            }
        }
        self.max
    }
}

/// Throughput helper: events per second over a window of virtual time.
///
/// # Examples
///
/// ```
/// use kus_sim::stats::rate_per_sec;
/// use kus_sim::time::Span;
///
/// assert_eq!(rate_per_sec(1000, Span::from_us(1)), 1e9);
/// ```
pub fn rate_per_sec(events: u64, elapsed: Span) -> f64 {
    if elapsed.is_zero() {
        return 0.0;
    }
    events as f64 / (elapsed.as_ps() as f64 * 1e-12)
}

/// Bytes-per-second helper over virtual time.
pub fn bytes_per_sec(bytes: u64, elapsed: Span) -> f64 {
    rate_per_sec(bytes, elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        c.incr();
        c.add(10);
        assert_eq!(c.get(), 11);
        assert_eq!(c.to_string(), "11");
    }

    #[test]
    fn gauge_time_weighted_average() {
        let mut g = Gauge::new();
        let t = |ns| Time::ZERO + Span::from_ns(ns);
        g.set(t(0), 10);
        g.set(t(10), 0);
        // 10 for 10ns then 0 for 10ns => avg 5 at t=20.
        assert!((g.time_weighted_avg(t(20)) - 5.0).abs() < 1e-9);
        assert_eq!(g.max(), 10);
        assert_eq!(g.level(), 0);
    }

    #[test]
    fn gauge_adjust() {
        let mut g = Gauge::new();
        g.adjust(Time::ZERO, 3);
        g.adjust(Time::ZERO + Span::from_ns(1), -2);
        assert_eq!(g.level(), 1);
    }

    #[test]
    #[should_panic(expected = "gauge underflow")]
    fn gauge_underflow_panics() {
        let mut g = Gauge::new();
        g.adjust(Time::ZERO, -1);
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h = SpanHistogram::new();
        for ns in [1u64, 2, 3, 4, 100] {
            h.record(Span::from_ns(ns));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Span::from_ns(1));
        assert_eq!(h.max(), Span::from_ns(100));
        assert_eq!(h.mean(), Span::from_ns(22));
    }

    #[test]
    fn histogram_quantiles_are_monotone() {
        let mut h = SpanHistogram::new();
        for ns in 1..=1000u64 {
            h.record(Span::from_ns(ns));
        }
        let q50 = h.quantile(0.5);
        let q90 = h.quantile(0.9);
        let q100 = h.quantile(1.0);
        assert!(q50 <= q90 && q90 <= q100);
        assert_eq!(q100, Span::from_ns(1000));
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = SpanHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Span::ZERO);
        assert_eq!(h.min(), Span::ZERO);
        assert_eq!(h.quantile(0.5), Span::ZERO);
    }

    #[test]
    fn histogram_merge() {
        let mut a = SpanHistogram::new();
        let mut b = SpanHistogram::new();
        a.record(Span::from_ns(10));
        b.record(Span::from_ns(1000));
        b.record(Span::from_ns(20));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Span::from_ns(10));
        assert_eq!(a.max(), Span::from_ns(1000));
        assert_eq!(a.sum(), Span::from_ns(1030));
        let empty = SpanHistogram::new();
        a.merge(&empty);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Span::from_ns(10));
    }

    #[test]
    fn hdr_bucket_upper_bounds_every_value() {
        // Round-tripping any value through its bucket must produce an upper
        // bound within 1/64 relative error — the histogram's accuracy claim.
        let mut probes: Vec<u64> = vec![0, 1, 63, 64, 65, 127, 128, 1000];
        for exp in 7..64u32 {
            let base = 1u64 << exp;
            probes.extend([base - 1, base, base + base / 3, base + base / 2]);
        }
        for &v in &probes {
            let upper = HdrHistogram::bucket_upper(HdrHistogram::bucket_of(v));
            assert!(upper >= v, "upper {upper} < value {v}");
            let err = (upper - v) as f64;
            assert!(
                err <= v as f64 / 64.0 + 1.0,
                "bucket error {err} too large for value {v}"
            );
        }
    }

    #[test]
    fn hdr_quantiles_match_exact_percentiles_within_error_bound() {
        // 100k distinct microsecond-scale samples spanning several octaves;
        // every quantile must bracket the exact order statistic from above
        // within the per-tier relative error bound.
        let n: u64 = 100_000;
        let mut h = HdrHistogram::new();
        for i in 1..=n {
            h.record(Span::from_ns(i * 997));
        }
        assert_eq!(h.count(), n);
        let exact = |q: f64| {
            let rank = (q * n as f64).ceil().max(1.0) as u64;
            Span::from_ns(rank * 997)
        };
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            let got = h.quantile(q);
            let want = exact(q);
            assert!(got >= want, "q={q}: {got} < exact {want}");
            let rel = (got.as_ps() - want.as_ps()) as f64 / want.as_ps() as f64;
            // 1/64 bucket width plus slack for the off-by-one between the
            // bucketed rank and the exact order statistic.
            assert!(rel <= 0.04, "q={q}: relative error {rel}");
        }
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn hdr_merge_order_never_changes_percentiles() {
        // Four shards with very different sample populations, merged in
        // every order: all reported percentiles must be identical.
        let shard = |lo: u64, hi: u64, step: u64| {
            let mut h = HdrHistogram::new();
            let mut v = lo;
            while v < hi {
                h.record(Span::from_ns(v));
                v += step;
            }
            h
        };
        let shards =
            [shard(1, 1000, 1), shard(1000, 50_000, 7), shard(100, 200, 1), shard(1_000_000, 1_002_000, 13)];
        let orders: Vec<Vec<usize>> = vec![
            vec![0, 1, 2, 3],
            vec![3, 2, 1, 0],
            vec![2, 0, 3, 1],
            vec![1, 3, 0, 2],
        ];
        let percentiles = |h: &HdrHistogram| {
            [0.5, 0.9, 0.99, 0.999]
                .map(|q| h.quantile(q))
                .to_vec()
        };
        let mut reference: Option<(u64, Span, Vec<Span>)> = None;
        for order in orders {
            let mut merged = HdrHistogram::new();
            for i in order {
                merged.merge(&shards[i]);
            }
            // Associativity too: pre-merge pairs, then merge the pairs.
            let mut left = HdrHistogram::new();
            left.merge(&shards[0]);
            left.merge(&shards[1]);
            let mut right = HdrHistogram::new();
            right.merge(&shards[2]);
            right.merge(&shards[3]);
            let mut paired = HdrHistogram::new();
            paired.merge(&left);
            paired.merge(&right);
            let key = (merged.count(), merged.max(), percentiles(&merged));
            assert_eq!(percentiles(&paired), key.2);
            match &reference {
                None => reference = Some(key),
                Some(r) => assert_eq!(*r, key, "merge order changed a percentile"),
            }
        }
    }

    #[test]
    fn hdr_empty_and_basic_stats() {
        let h = HdrHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), Span::ZERO);
        assert_eq!(h.mean(), Span::ZERO);
        assert_eq!(h.min(), Span::ZERO);
        let mut h = HdrHistogram::new();
        h.record(Span::from_ns(10));
        h.record(Span::from_ns(30));
        assert_eq!(h.mean(), Span::from_ns(20));
        assert_eq!(h.min(), Span::from_ns(10));
        assert_eq!(h.max(), Span::from_ns(30));
        assert_eq!(h.quantile(1.0), Span::from_ns(30));
    }

    #[test]
    fn rates() {
        assert_eq!(rate_per_sec(0, Span::ZERO), 0.0);
        assert!((bytes_per_sec(4_000_000_000, Span::from_us(1_000_000)) - 4e9).abs() < 1.0);
    }
}
