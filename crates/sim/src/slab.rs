//! Slab-allocated event payload storage with freelist recycling.
//!
//! Every scheduled event's payload lives in one [`EventSlab`] slot; its
//! routing key (deadline + tie-breaking sequence number) travels separately
//! through the timing wheel's buckets as a compact [`Ready`] entry, so the
//! wheel never touches payload memory until the moment of dispatch. Slots
//! are recycled through a freelist, so steady-state scheduling performs
//! **no allocation at all** for the fixed payload variants and exactly one
//! `Box` for the general closure escape hatch — never a queue-node
//! allocation.
//!
//! Safety of recycling is enforced structurally rather than with `unsafe`:
//! a slot is `Option`al, [`EventSlab::take`] moves the payload out and
//! returns the slot to the freelist in the same call, and a freshly handed
//! out slot is asserted vacant. The property tests in `event.rs`
//! additionally drive random schedule/fire/recycle interleavings against
//! these invariants.

use crate::event::{EventFn, Sim};

/// Index of an event slot inside an [`EventSlab`]. `u32` keeps wheel
/// entries and the freelist at half the size of a pointer; four billion
/// *pending* events is far beyond any simulated scenario (total events are
/// unbounded — slots recycle).
pub(crate) type EventId = u32;

/// What runs when an event fires.
///
/// The `fn`-pointer variant is the "fixed" fast path: scheduling it
/// allocates nothing. [`Payload::Boxed`] is the escape hatch for arbitrary
/// capturing closures (note that boxing a zero-capture closure also does not
/// allocate — `Box` of a zero-sized value is free).
pub(crate) enum Payload {
    /// General boxed closure.
    Boxed(EventFn),
    /// Function pointer plus one word of threaded state.
    FnArg(fn(&mut Sim, u64), u64),
}

/// A pending event as the wheel routes it: the exact `(at, seq)` dispatch
/// key next to the slab slot holding the payload. Wheel buckets and the
/// driver's ready run are flat arrays of these, so bucket cascades and
/// batch sorting stream 24-byte records without touching payloads.
#[derive(Clone, Copy)]
pub(crate) struct Ready {
    /// Exact deadline, in raw picoseconds.
    pub at: u64,
    /// Same-instant tie-breaker.
    pub seq: u64,
    /// Slab slot holding the payload.
    pub id: EventId,
}

/// Arena of event payload slots with a freelist.
pub(crate) struct EventSlab {
    /// `Some` while the event is live (scheduled, or staged in the current
    /// ready run); `None` while the slot is free.
    slots: Vec<Option<Payload>>,
    /// Free slot ids, popped in LIFO order to keep the hot set small.
    free: Vec<EventId>,
    live: usize,
}

impl EventSlab {
    pub(crate) fn with_capacity(cap: usize) -> EventSlab {
        EventSlab { slots: Vec::with_capacity(cap), free: Vec::new(), live: 0 }
    }

    /// Number of live (scheduled or staged-for-dispatch) events.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated (live + recycled). Capacity telemetry for
    /// the benchmarks; results never depend on it.
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Allocates a slot for a new event, recycling a free one if available.
    #[inline]
    pub(crate) fn insert(&mut self, payload: Payload) -> EventId {
        self.live += 1;
        if let Some(id) = self.free.pop() {
            let slot = &mut self.slots[id as usize];
            debug_assert!(slot.is_none(), "freelist handed out a live slot");
            *slot = Some(payload);
            return id;
        }
        let id = self.slots.len();
        assert!(id < u32::MAX as usize, "event slab exhausted u32 ids");
        self.slots.push(Some(payload));
        id as EventId
    }

    /// Moves the payload out and returns the slot to the freelist. The event
    /// is gone after this; the id may be handed out again by `insert`.
    #[inline]
    pub(crate) fn take(&mut self, id: EventId) -> Payload {
        let payload = self.slots[id as usize].take().expect("fired an event twice (slab aliasing)");
        self.free.push(id);
        self.live -= 1;
        payload
    }
}
