//! The pre-timing-wheel event core, retained as a **reference model**.
//!
//! This is the `BinaryHeap`-of-boxed-closures driver the workspace ran on
//! before the timing-wheel rewrite, kept verbatim in behaviour for two jobs:
//!
//! 1. **Differential testing** — the property suite in [`event`](crate::event)
//!    replays randomized schedule/cancel/same-instant workloads through both
//!    cores and asserts the `(time, seq)` pop sequences are identical.
//! 2. **Live baseline** — `kus-bench`'s `simbench` suite measures this core
//!    on the same machine and the same scenarios as the production core, so
//!    the recorded events/sec speedup is a same-run ratio rather than a
//!    stale constant.
//!
//! It is **not** a production API: nothing outside tests and the benchmark
//! harness should drive a [`RefSim`].
//!
//! The one deliberate change from the historical code is the comparator.
//! The old implementation open-coded an inverted `(time, seq)` comparison
//! inside `Ord` — `(other.at, other.seq).cmp(&(self.at, self.seq))` — a
//! footgun where a refactor touching one side of the inversion silently
//! flips dispatch order. The ordering is now defined once by
//! [`Scheduled::key`] and inverted in exactly one documented place.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{Span, Time};

/// A boxed event callback for the reference driver.
pub type RefEventFn = Box<dyn FnOnce(&mut RefSim)>;

/// The dispatch-order key of a scheduled event: earlier deadlines first,
/// scheduling order (`seq`) breaking same-instant ties. **This tuple is the
/// single source of truth for event ordering** — the production wheel sorts
/// its same-instant batches by the same `seq` component, and the golden
/// trace fingerprints pin the resulting order.
pub type EventKey = (Time, u64);

/// A heap entry: deadline, tie-breaker, callback.
pub struct Scheduled {
    at: Time,
    seq: u64,
    f: RefEventFn,
}

impl Scheduled {
    /// The dispatch-order key. Lexicographic `(at, seq)`: strictly earlier
    /// deadlines always dispatch first; equal deadlines dispatch in
    /// scheduling order. `seq` is a `u64` assigned monotonically from zero
    /// and guarded against wraparound at the scheduling site, so the
    /// lexicographic comparison never sees a wrapped (ambiguous) value.
    pub fn key(&self) -> EventKey {
        (self.at, self.seq)
    }
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    /// `BinaryHeap` is a max-heap, so the comparison is inverted **here and
    /// only here**: the entry with the smallest [`key`](Scheduled::key) is
    /// the heap maximum and pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(&self.key())
    }
}

/// The reference discrete-event driver: identical observable semantics to
/// [`Sim`](crate::Sim), built on a binary heap of boxed closures.
#[derive(Default)]
pub struct RefSim {
    now: Time,
    seq: u64,
    queue: BinaryHeap<Scheduled>,
    executed: u64,
    horizon: Time,
    budget: u64,
}

impl RefSim {
    /// An empty reference simulation at time zero.
    pub fn new() -> RefSim {
        RefSim {
            now: Time::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            executed: 0,
            horizon: Time::MAX,
            budget: u64::MAX,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Stops [`run`](RefSim::run) once virtual time would pass `t`.
    pub fn set_horizon(&mut self, t: Time) {
        self.horizon = t;
    }

    /// Stops [`run`](RefSim::run) after `n` further events.
    pub fn set_event_budget(&mut self, n: u64) {
        self.budget = n;
    }

    /// Schedules `f` at absolute time `at`. Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: Time, f: impl FnOnce(&mut RefSim) + 'static) {
        assert!(at >= self.now, "cannot schedule into the past: {at} < {}", self.now);
        let seq = self.seq;
        self.seq = self.seq.checked_add(1).expect("event sequence wrapped");
        self.queue.push(Scheduled { at, seq, f: Box::new(f) });
    }

    /// Schedules `f` to run `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Span, f: impl FnOnce(&mut RefSim) + 'static) {
        self.schedule_at(self.now + delay, f);
    }

    /// Schedules `f` at the current instant, after events already scheduled
    /// for this instant.
    pub fn schedule_now(&mut self, f: impl FnOnce(&mut RefSim) + 'static) {
        self.schedule_at(self.now, f);
    }

    /// Executes one event if one is pending within the horizon.
    pub fn step(&mut self) -> bool {
        match self.queue.peek() {
            Some(ev) if ev.at <= self.horizon => {}
            _ => return false,
        }
        let ev = self.queue.pop().expect("peeked event vanished");
        debug_assert!(ev.at >= self.now, "event queue went backwards");
        self.now = ev.at;
        self.executed += 1;
        (ev.f)(self);
        true
    }

    /// Runs until drained, horizon, or budget; returns whether it drained.
    pub fn run(&mut self) -> bool {
        let mut remaining = self.budget;
        while remaining > 0 && self.step() {
            remaining -= 1;
        }
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at_ps: u64, seq: u64) -> Scheduled {
        Scheduled { at: Time::from_ps(at_ps), seq, f: Box::new(|_| {}) }
    }

    #[test]
    fn key_is_lexicographic_time_then_seq() {
        assert!(entry(5, 100).key() < entry(6, 0).key(), "time dominates seq");
        assert!(entry(5, 1).key() < entry(5, 2).key(), "seq breaks ties");
        assert_eq!(entry(5, 1).key(), entry(5, 1).key());
        // Extremes: the largest representable deadline and seq still order
        // strictly after everything smaller — no wrap, no saturation.
        assert!(entry(u64::MAX - 1, u64::MAX).key() < entry(u64::MAX, 0).key());
        assert!(entry(u64::MAX, u64::MAX - 1).key() < entry(u64::MAX, u64::MAX).key());
    }

    #[test]
    fn heap_order_is_inverted_key_order() {
        // Smaller key == greater heap entry (max-heap pops smallest key).
        assert_eq!(entry(1, 0).cmp(&entry(2, 0)), Ordering::Greater);
        assert_eq!(entry(2, 0).cmp(&entry(1, 0)), Ordering::Less);
        assert_eq!(entry(7, 3).cmp(&entry(7, 4)), Ordering::Greater);
        assert_eq!(entry(7, 3).cmp(&entry(7, 3)), Ordering::Equal);
    }

    #[test]
    fn equal_times_pop_in_scheduling_order_at_seq_extremes() {
        let mut q = BinaryHeap::new();
        for seq in [u64::MAX, 0, u64::MAX - 1, 1] {
            q.push(entry(9, seq));
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.key().1)).collect();
        assert_eq!(popped, vec![0, 1, u64::MAX - 1, u64::MAX]);
    }

    #[test]
    #[should_panic(expected = "event sequence wrapped")]
    fn seq_wraparound_is_guarded_not_silent() {
        let mut sim = RefSim::new();
        sim.seq = u64::MAX;
        sim.schedule_now(|_| {});
    }

    #[test]
    fn ref_sim_basic_semantics() {
        let mut sim = RefSim::new();
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        for (delay, v) in [(30u64, 3u32), (10, 1), (20, 2)] {
            let l = log.clone();
            sim.schedule_in(Span::from_ns(delay), move |_| l.borrow_mut().push(v));
        }
        assert!(sim.run());
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
        assert_eq!(sim.now(), Time::ZERO + Span::from_ns(30));
        assert_eq!(sim.executed(), 3);
    }
}
