//! Virtual time for the simulation.
//!
//! All simulation time is kept as an integer number of **picoseconds** so that
//! arithmetic is exact and runs are bit-reproducible. Two newtypes are
//! provided: [`Time`] is an *instant* on the simulation clock, and [`Span`] is
//! a *duration*. Mixing them up is a compile error, which catches a class of
//! off-by-an-epoch bugs that plague simulators using bare integers.
//!
//! A [`Clock`] converts between core cycles and physical time for a given
//! frequency (the reproduced host is a 2.3 GHz Xeon E5-2670v3).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per nanosecond.
const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
const PS_PER_US: u64 = 1_000_000;

/// An instant on the virtual clock, in integer picoseconds since time zero.
///
/// # Examples
///
/// ```
/// use kus_sim::time::{Time, Span};
///
/// let t = Time::ZERO + Span::from_ns(800);
/// assert_eq!(t - Time::ZERO, Span::from_ns(800));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A duration of virtual time, in integer picoseconds.
///
/// # Examples
///
/// ```
/// use kus_sim::time::Span;
///
/// assert_eq!(Span::from_us(1), Span::from_ns(1000));
/// assert_eq!(Span::from_ns(3) * 4, Span::from_ns(12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span(u64);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; useful as an "infinitely far" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant from raw picoseconds since time zero.
    pub const fn from_ps(ps: u64) -> Time {
        Time(ps)
    }

    /// Raw picoseconds since time zero.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This instant expressed in (truncated) nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }

    /// This instant expressed in fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: Time) -> Span {
        Span(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl Span {
    /// The empty span.
    pub const ZERO: Span = Span(0);

    /// Creates a span from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Span {
        Span(ps)
    }

    /// Creates a span from nanoseconds.
    pub const fn from_ns(ns: u64) -> Span {
        Span(ns * PS_PER_NS)
    }

    /// Creates a span from microseconds.
    pub const fn from_us(us: u64) -> Span {
        Span(us * PS_PER_US)
    }

    /// Creates a span from a floating-point nanosecond quantity, rounding to
    /// the nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_ns_f64(ns: f64) -> Span {
        assert!(ns.is_finite() && ns >= 0.0, "span must be finite and non-negative");
        Span((ns * PS_PER_NS as f64).round() as u64)
    }

    /// Raw picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This span in (truncated) nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }

    /// This span in fractional nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// This span in fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// True if this is the empty span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two spans.
    pub fn max(self, other: Span) -> Span {
        Span(self.0.max(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: Span) -> Span {
        Span(self.0.min(other.0))
    }

    /// Subtraction that stops at zero instead of underflowing.
    pub fn saturating_sub(self, other: Span) -> Span {
        Span(self.0.saturating_sub(other.0))
    }
}

impl Add<Span> for Time {
    type Output = Time;
    fn add(self, rhs: Span) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Span> for Time {
    fn add_assign(&mut self, rhs: Span) {
        self.0 += rhs.0;
    }
}

impl Sub<Span> for Time {
    type Output = Time;
    fn sub(self, rhs: Span) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Span;
    fn sub(self, rhs: Time) -> Span {
        Span(self.0 - rhs.0)
    }
}

impl Add for Span {
    type Output = Span;
    fn add(self, rhs: Span) -> Span {
        Span(self.0 + rhs.0)
    }
}

impl AddAssign for Span {
    fn add_assign(&mut self, rhs: Span) {
        self.0 += rhs.0;
    }
}

impl Sub for Span {
    type Output = Span;
    fn sub(self, rhs: Span) -> Span {
        Span(self.0 - rhs.0)
    }
}

impl SubAssign for Span {
    fn sub_assign(&mut self, rhs: Span) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Span {
    type Output = Span;
    fn mul(self, rhs: u64) -> Span {
        Span(self.0 * rhs)
    }
}

impl Div<u64> for Span {
    type Output = Span;
    fn div(self, rhs: u64) -> Span {
        Span(self.0 / rhs)
    }
}

impl Div<Span> for Span {
    /// How many times `rhs` fits in `self` (truncated).
    type Output = u64;
    fn div(self, rhs: Span) -> u64 {
        self.0 / rhs.0
    }
}

impl Sum for Span {
    fn sum<I: Iterator<Item = Span>>(iter: I) -> Span {
        iter.fold(Span::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", Span(self.0))
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= PS_PER_US {
            write!(f, "{:.3}us", ps as f64 / PS_PER_US as f64)
        } else if ps >= PS_PER_NS {
            write!(f, "{:.3}ns", ps as f64 / PS_PER_NS as f64)
        } else {
            write!(f, "{ps}ps")
        }
    }
}

/// Converts between processor cycles and physical time for a fixed frequency.
///
/// The reproduced host is an Intel Xeon E5-2670v3 nominally at 2.3 GHz.
///
/// # Examples
///
/// ```
/// use kus_sim::time::{Clock, Span};
///
/// let clk = Clock::from_ghz(2.0);
/// assert_eq!(clk.cycles(4), Span::from_ns(2));
/// assert_eq!(clk.cycles_in(Span::from_ns(10)), 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Clock {
    ps_per_cycle: u64,
}

impl Clock {
    /// The default clock of the reproduced platform: 2.3 GHz.
    pub const XEON_E5_2670V3: Clock = Clock { ps_per_cycle: 435 }; // ~2.3 GHz

    /// Creates a clock from a frequency in GHz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not strictly positive and finite.
    pub fn from_ghz(ghz: f64) -> Clock {
        assert!(ghz.is_finite() && ghz > 0.0, "frequency must be positive");
        let ps = (1000.0 / ghz).round() as u64;
        assert!(ps > 0, "frequency too high to represent");
        Clock { ps_per_cycle: ps }
    }

    /// Creates a clock from an explicit cycle period in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ps` is zero.
    pub fn from_ps_per_cycle(ps: u64) -> Clock {
        assert!(ps > 0, "cycle period must be non-zero");
        Clock { ps_per_cycle: ps }
    }

    /// The period of one cycle.
    pub const fn period(self) -> Span {
        Span(self.ps_per_cycle)
    }

    /// The span of `n` cycles.
    pub const fn cycles(self, n: u64) -> Span {
        Span(self.ps_per_cycle * n)
    }

    /// How many whole cycles fit in `span`.
    pub const fn cycles_in(self, span: Span) -> u64 {
        span.0 / self.ps_per_cycle
    }

    /// Fractional cycles in `span`.
    pub fn cycles_in_f64(self, span: Span) -> f64 {
        span.0 as f64 / self.ps_per_cycle as f64
    }

    /// The span of `n` instructions executing at sustained `ipc`.
    ///
    /// Used to model the paper's dependent-arithmetic "work" loop, which is
    /// constructed to run at IPC ≈ 1.4 on the 4-wide host core.
    ///
    /// # Panics
    ///
    /// Panics if `ipc` is not strictly positive and finite.
    pub fn work(self, instructions: u64, ipc: f64) -> Span {
        assert!(ipc.is_finite() && ipc > 0.0, "ipc must be positive");
        let cycles = instructions as f64 / ipc;
        Span((cycles * self.ps_per_cycle as f64).round() as u64)
    }
}

impl Default for Clock {
    fn default() -> Clock {
        Clock::XEON_E5_2670V3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_constructors_agree() {
        assert_eq!(Span::from_us(3), Span::from_ns(3000));
        assert_eq!(Span::from_ns(5), Span::from_ps(5000));
        assert_eq!(Span::from_ns_f64(1.5), Span::from_ps(1500));
    }

    #[test]
    fn time_arithmetic() {
        let a = Time::from_ps(100);
        let b = a + Span::from_ps(50);
        assert_eq!(b.as_ps(), 150);
        assert_eq!(b - a, Span::from_ps(50));
        assert_eq!(a.saturating_since(b), Span::ZERO);
        assert_eq!(b.saturating_since(a), Span::from_ps(50));
    }

    #[test]
    fn span_arithmetic() {
        let s = Span::from_ns(10);
        assert_eq!(s * 3, Span::from_ns(30));
        assert_eq!(s / 2, Span::from_ns(5));
        assert_eq!(Span::from_ns(25) / Span::from_ns(10), 2);
        assert_eq!(s.saturating_sub(Span::from_ns(20)), Span::ZERO);
    }

    #[test]
    fn clock_cycles() {
        let clk = Clock::from_ghz(2.0); // 500 ps
        assert_eq!(clk.period(), Span::from_ps(500));
        assert_eq!(clk.cycles(3), Span::from_ps(1500));
        assert_eq!(clk.cycles_in(Span::from_ns(1)), 2);
    }

    #[test]
    fn clock_work_ipc() {
        let clk = Clock::from_ghz(1.0); // 1000 ps/cycle
        // 14 instructions at IPC 1.4 => 10 cycles => 10 ns.
        assert_eq!(clk.work(14, 1.4), Span::from_ns(10));
    }

    #[test]
    fn xeon_clock_close_to_2_3_ghz() {
        let p = Clock::XEON_E5_2670V3.period().as_ps() as f64;
        let ghz = 1000.0 / p;
        assert!((ghz - 2.3).abs() < 0.01, "got {ghz}");
    }

    #[test]
    fn display_formats() {
        assert_eq!(Span::from_ps(12).to_string(), "12ps");
        assert_eq!(Span::from_ns(12).to_string(), "12.000ns");
        assert_eq!(Span::from_us(2).to_string(), "2.000us");
        assert_eq!(Time::from_ps(1500).to_string(), "t=1.500ns");
    }

    #[test]
    fn span_sum() {
        let total: Span = [Span::from_ns(1), Span::from_ns(2)].into_iter().sum();
        assert_eq!(total, Span::from_ns(3));
    }
}
