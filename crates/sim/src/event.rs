//! The event core and simulation driver.
//!
//! [`Sim`] dispatches events in `(time, seq)` order — a total order in which
//! events scheduled for the same instant fire in scheduling order, making
//! every run bit-deterministic. Since the timing-wheel rewrite the machinery
//! behind that contract is:
//!
//! - a **hierarchical timing wheel** ([`wheel`](crate::wheel)) instead of a
//!   binary heap: O(1) insert, O(1)-amortized pop, far-future deadlines held
//!   in coarse calendar buckets that cascade down as the clock approaches;
//! - a **slab event allocator** ([`slab`](crate::slab)): events live in
//!   freelist-recycled fixed-size slots threaded intrusively through the
//!   wheel's buckets, so scheduling allocates nothing beyond the payload
//!   (and nothing at all for the [`schedule_fn_at`](Sim::schedule_fn_at)
//!   fixed variants — the boxed-closure [`schedule_at`](Sim::schedule_at)
//!   remains the general escape hatch);
//! - **batched dispatch**: the wheel surrenders a whole tick (~1 ns of
//!   deadlines) at once as a `(time, seq)`-sorted *ready run*; the driver
//!   drains the run without re-touching the scheduler per event, advancing
//!   `now` and the shared clock mirror only when the instant changes, and
//!   merges events scheduled into the in-flight tick at their exact sorted
//!   position.
//!
//! The pre-rewrite `BinaryHeap` core is retained verbatim in
//! [`heap_ref`](crate::heap_ref) as a reference model; the differential
//! suite at the bottom of this file replays randomized workloads through
//! both and asserts identical dispatch sequences.

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

use crate::slab::{EventSlab, Payload, Ready};
use crate::time::{Span, Time};
use crate::wheel::{Wheel, GRAIN_BITS};

/// A boxed event callback.
pub type EventFn = Box<dyn FnOnce(&mut Sim)>;

/// Outcome of [`Sim::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The configured event budget was exhausted before the queue drained.
    BudgetExhausted,
    /// The time horizon was reached before the queue drained.
    HorizonReached,
}

/// The discrete-event simulation driver.
///
/// # Examples
///
/// ```
/// use kus_sim::{Sim, time::Span};
///
/// let mut sim = Sim::new();
/// let hits = std::rc::Rc::new(std::cell::Cell::new(0u32));
/// let h = hits.clone();
/// sim.schedule_in(Span::from_ns(10), move |sim| {
///     h.set(h.get() + 1);
///     let h2 = h.clone();
///     sim.schedule_in(Span::from_ns(5), move |_| h2.set(h2.get() + 1));
/// });
/// sim.run();
/// assert_eq!(hits.get(), 2);
/// assert_eq!(sim.now().as_ns(), 15);
/// ```
pub struct Sim {
    now: Time,
    /// Mirror of `now`, shared with observers (e.g. the tracer) that have no
    /// `&Sim` at the point where they need a timestamp. Updated once per
    /// distinct instant, not once per event.
    clock: Rc<Cell<Time>>,
    seq: u64,
    slab: EventSlab,
    wheel: Wheel,
    /// The tick currently being dispatched, drained from the wheel and
    /// sorted by exact `(time, seq)`; `ready[batch_pos..]` are still
    /// pending. The buffer is reused across ticks to keep the dispatch loop
    /// allocation-free, and [`push`](Sim::push) merge-inserts events that
    /// land inside the in-flight tick at their sorted position.
    ready: Vec<Ready>,
    batch_pos: usize,
    executed: u64,
    horizon: Time,
    budget: u64,
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.pending())
            .field("executed", &self.executed)
            .finish()
    }
}

impl Default for Sim {
    fn default() -> Sim {
        Sim::new()
    }
}

impl Sim {
    /// Creates an empty simulation at time zero with no horizon and a very
    /// large default event budget (a runaway-loop backstop).
    pub fn new() -> Sim {
        Sim::with_event_capacity(0)
    }

    /// Like [`new`](Sim::new), but pre-sizes the event slab for roughly
    /// `cap` concurrently pending events. Purely a performance hint: results
    /// are bit-identical for any value (locked down by a property test).
    pub fn with_event_capacity(cap: usize) -> Sim {
        Sim {
            now: Time::ZERO,
            clock: Rc::new(Cell::new(Time::ZERO)),
            seq: 0,
            slab: EventSlab::with_capacity(cap),
            wheel: Wheel::new(),
            ready: Vec::new(),
            batch_pos: 0,
            executed: 0,
            horizon: Time::MAX,
            budget: u64::MAX,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// A shared handle onto the simulation clock. The cell tracks
    /// [`now`](Sim::now) as events execute, letting passive observers (the
    /// tracer, in particular) timestamp themselves without threading a `&Sim`
    /// through every call site.
    pub fn now_handle(&self) -> Rc<Cell<Time>> {
        self.clock.clone()
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (scheduled in the wheel or waiting
    /// in the in-flight ready run).
    pub fn pending(&self) -> usize {
        debug_assert_eq!(
            self.slab.live(),
            self.wheel.len() + (self.ready.len() - self.batch_pos)
        );
        self.slab.live()
    }

    /// Total event slots the slab has ever allocated (live + recycled).
    /// Telemetry for the benchmark suite; results never depend on it.
    pub fn event_slots(&self) -> usize {
        self.slab.capacity()
    }

    /// Stops [`run`](Sim::run) once virtual time would pass `t`.
    pub fn set_horizon(&mut self, t: Time) {
        self.horizon = t;
    }

    /// Stops [`run`](Sim::run) after `n` further events.
    pub fn set_event_budget(&mut self, n: u64) {
        self.budget = n;
    }

    fn push(&mut self, at: Time, payload: Payload) {
        assert!(at >= self.now, "cannot schedule into the past: {at} < {}", self.now);
        let seq = self.seq;
        self.seq = self.seq.checked_add(1).expect("event sequence wrapped");
        let id = self.slab.insert(payload);
        let at_ps = at.as_ps();
        let e = Ready { at: at_ps, seq, id };
        let tick = at_ps >> GRAIN_BITS;
        if self.batch_pos < self.ready.len() && tick == self.wheel.elapsed() {
            // The event lands inside the tick currently being dispatched:
            // merge it into the ready run at its exact (time, seq) position.
            // seq is the global maximum, so it sorts after any equal
            // deadline — the position depends on the deadline alone.
            let pos = self.ready[self.batch_pos..].partition_point(|r| r.at <= at_ps);
            self.ready.insert(self.batch_pos + pos, e);
        } else {
            if tick < self.wheel.elapsed() {
                // A horizon-limited peek cascaded the wheel cursor ahead of
                // `now`; re-anchor it before inserting into the gap. If a
                // drained tick is staged beyond the horizon (front of
                // `ready` past it, nothing of the tick dispatched yet),
                // spill it back first so the wheel again owns every pending
                // event and the ready run cannot shadow the earlier insert.
                for i in self.batch_pos..self.ready.len() {
                    self.wheel.insert(self.ready[i]);
                }
                self.ready.clear();
                self.batch_pos = 0;
                self.wheel.rewind(tick);
            }
            self.wheel.insert(e);
        }
    }

    /// Schedules `f` to run at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: Time, f: impl FnOnce(&mut Sim) + 'static) {
        self.push(at, Payload::Boxed(Box::new(f)));
    }

    /// Schedules `f` to run `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Span, f: impl FnOnce(&mut Sim) + 'static) {
        self.schedule_at(self.now + delay, f);
    }

    /// Schedules `f` to run at the current instant, after all events already
    /// scheduled for this instant.
    pub fn schedule_now(&mut self, f: impl FnOnce(&mut Sim) + 'static) {
        self.schedule_at(self.now, f);
    }

    /// Allocation-free variant of [`schedule_at`](Sim::schedule_at) for a
    /// plain function pointer carrying one word of state. The event occupies
    /// a recycled slab slot and nothing else — the fast path for
    /// self-rescheduling timers and other fixed-shape events.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_fn_at(&mut self, at: Time, f: fn(&mut Sim, u64), arg: u64) {
        self.push(at, Payload::FnArg(f, arg));
    }

    /// [`schedule_fn_at`](Sim::schedule_fn_at) relative to the current time.
    pub fn schedule_fn_in(&mut self, delay: Span, f: fn(&mut Sim, u64), arg: u64) {
        self.schedule_fn_at(self.now + delay, f, arg);
    }

    /// Executes exactly one event if one is pending within the horizon.
    /// Returns whether an event ran.
    pub fn step(&mut self) -> bool {
        if self.batch_pos == self.ready.len() {
            self.ready.clear();
            self.batch_pos = 0;
            if !self.wheel.next_slot(self.horizon.as_ps() >> GRAIN_BITS, &mut self.ready) {
                return false;
            }
        }
        let ev = self.ready[self.batch_pos];
        let at = Time::from_ps(ev.at);
        if at > self.horizon {
            // Not due: the drained tick straddles the horizon, or the
            // horizon was lowered mid-run. The rest of the run stays pending
            // (and resumes if the horizon is raised again).
            return false;
        }
        self.batch_pos += 1;
        self.executed += 1;
        debug_assert!(at >= self.now, "event queue went backwards");
        if at != self.now {
            self.now = at;
            self.clock.set(at);
        }
        match self.slab.take(ev.id) {
            Payload::Boxed(f) => f(self),
            Payload::FnArg(f, arg) => f(self, arg),
        }
        true
    }

    /// Runs events until the queue drains, the horizon is reached, or the
    /// event budget is exhausted.
    pub fn run(&mut self) -> RunOutcome {
        let mut remaining = self.budget;
        loop {
            if remaining == 0 {
                return RunOutcome::BudgetExhausted;
            }
            if !self.step() {
                return if self.pending() == 0 {
                    RunOutcome::Drained
                } else {
                    RunOutcome::HorizonReached
                };
            }
            remaining -= 1;
        }
    }

    /// Runs until `pred` returns true (checked after each event), the queue
    /// drains, or limits hit. Returns true if the predicate was satisfied.
    pub fn run_until(&mut self, mut pred: impl FnMut() -> bool) -> bool {
        loop {
            if pred() {
                return true;
            }
            if !self.step() {
                return pred();
            }
        }
    }
}

/// A cancellable handle for a scheduled event.
///
/// The DES kernel keeps no direct reference from handle to queue entry;
/// instead the token is shared with the closure, which checks it on firing.
/// This is the standard "lazy deletion" technique: O(1) cancel, no wheel
/// surgery — and it makes tokens trivially independent of slab slot
/// recycling (a recycled slot never carries the old event's token).
///
/// # Examples
///
/// ```
/// use kus_sim::{Sim, event::Cancel, time::Span};
///
/// let mut sim = Sim::new();
/// let fired = std::rc::Rc::new(std::cell::Cell::new(false));
/// let f = fired.clone();
/// let cancel = Cancel::new();
/// let c = cancel.clone();
/// sim.schedule_in(Span::from_ns(1), move |_| {
///     if !c.is_cancelled() {
///         f.set(true);
///     }
/// });
/// cancel.cancel();
/// sim.run();
/// assert!(!fired.get());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cancel(Rc<Cell<bool>>);

impl Cancel {
    /// Creates a live (non-cancelled) token.
    pub fn new() -> Cancel {
        Cancel::default()
    }

    /// Marks the token cancelled.
    pub fn cancel(&self) {
        self.0.set(true);
    }

    /// Whether [`cancel`](Cancel::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    fn record(log: &Rc<RefCell<Vec<u32>>>, v: u32) -> impl FnOnce(&mut Sim) {
        let log = log.clone();
        move |_| log.borrow_mut().push(v)
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.schedule_in(Span::from_ns(30), record(&log, 3));
        sim.schedule_in(Span::from_ns(10), record(&log, 1));
        sim.schedule_in(Span::from_ns(20), record(&log, 2));
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
        assert_eq!(sim.now(), Time::ZERO + Span::from_ns(30));
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for v in 0..16 {
            sim.schedule_in(Span::from_ns(5), record(&log, v));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_now_runs_after_existing_same_instant_events() {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let l2 = log.clone();
        sim.schedule_in(Span::ZERO, {
            let log = log.clone();
            move |sim| {
                log.borrow_mut().push(1);
                sim.schedule_now(record(&l2, 3));
            }
        });
        sim.schedule_in(Span::ZERO, record(&log, 2));
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn events_can_chain() {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        sim.schedule_in(Span::from_ns(1), move |sim| {
            l.borrow_mut().push(1);
            let l2 = l.clone();
            sim.schedule_in(Span::from_ns(1), move |_| l2.borrow_mut().push(2));
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2]);
        assert_eq!(sim.now().as_ns(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Sim::new();
        sim.schedule_in(Span::from_ns(10), |sim| {
            sim.schedule_at(Time::from_ps(1), |_| {});
        });
        sim.run();
    }

    #[test]
    fn horizon_stops_run() {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.schedule_in(Span::from_ns(1), record(&log, 1));
        sim.schedule_in(Span::from_ns(100), record(&log, 2));
        sim.set_horizon(Time::ZERO + Span::from_ns(50));
        assert_eq!(sim.run(), RunOutcome::HorizonReached);
        assert_eq!(*log.borrow(), vec![1]);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn budget_stops_run() {
        let mut sim = Sim::new();
        fn reschedule(sim: &mut Sim) {
            sim.schedule_in(Span::from_ns(1), reschedule);
        }
        sim.schedule_in(Span::from_ns(1), reschedule);
        sim.set_event_budget(100);
        assert_eq!(sim.run(), RunOutcome::BudgetExhausted);
        assert_eq!(sim.executed(), 100);
    }

    #[test]
    fn run_until_predicate() {
        let mut sim = Sim::new();
        let count = Rc::new(Cell::new(0u32));
        for _ in 0..10 {
            let c = count.clone();
            sim.schedule_in(Span::from_ns(1), move |_| c.set(c.get() + 1));
        }
        let c = count.clone();
        assert!(sim.run_until(move || c.get() >= 4));
        assert_eq!(count.get(), 4);
    }

    #[test]
    fn cancel_token() {
        let c = Cancel::new();
        assert!(!c.is_cancelled());
        let c2 = c.clone();
        c2.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn fn_events_interleave_with_closures_in_seq_order() {
        fn bump(sim: &mut Sim, arg: u64) {
            let _ = sim;
            LOG.with(|l| l.borrow_mut().push(arg as u32));
        }
        thread_local! {
            static LOG: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
        }
        LOG.with(|l| l.borrow_mut().clear());
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.schedule_fn_in(Span::from_ns(5), bump, 1);
        sim.schedule_in(Span::from_ns(5), {
            let log = log.clone();
            move |_| log.borrow_mut().push(2)
        });
        sim.schedule_fn_in(Span::from_ns(5), bump, 3);
        sim.run();
        // Closure fired second; fn events first and third.
        assert_eq!(*log.borrow(), vec![2]);
        LOG.with(|l| assert_eq!(*l.borrow(), vec![1, 3]));
    }

    // ------------------------------------------------------------------
    // Wheel cascade boundaries.
    // ------------------------------------------------------------------

    /// One tick, in picoseconds (the wheel's level-0 bucketing granularity).
    const TICK: u64 = 1 << crate::wheel::GRAIN_BITS;

    /// Order survives the three bucketing boundaries: sub-tick deadlines
    /// (several events inside one tick, ordered by the ready-run sort),
    /// level-0 slot rollover (deadlines straddling a tick boundary and the
    /// 64-tick slot wrap), and page rollover (straddling the 4096-tick
    /// level-1 boundary).
    #[test]
    fn wheel_slot_and_page_rollover() {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let deadlines = [
            63u64, // inside tick 0
            64,
            65,
            TICK - 1, // last ps of tick 0
            TICK,     // first ps of tick 1
            TICK + 1, // tick boundary straddle
            64 * TICK - 1, // tick 63 — last slot of the level-0 revolution
            64 * TICK,     // tick 64 — slot wrap
            64 * TICK + 1,
            4096 * TICK - 1, // tick 4095 — last slot of the level-1 page
            4096 * TICK,     // tick 4096 — page wrap
            4096 * TICK + 1,
        ];
        for (i, &ps) in deadlines.iter().rev().enumerate() {
            let l = log.clone();
            sim.schedule_at(Time::from_ps(ps), move |_| l.borrow_mut().push(i as u32));
        }
        assert_eq!(sim.run(), RunOutcome::Drained);
        let expect: Vec<u32> = (0..deadlines.len() as u32).rev().collect();
        assert_eq!(*log.borrow(), expect);
        assert_eq!(sim.now().as_ps(), 4096 * TICK + 1);
    }

    /// Far-future deadlines live in the top calendar levels and cascade down
    /// correctly — including one over a second away (level >= 7) and one at
    /// the 2^60 boundary of the top level.
    #[test]
    fn wheel_far_future_overflow_levels() {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let far = [1u64 << 40, (1 << 40) + 1, 1 << 59, 1 << 60, (1 << 60) + 12_345];
        for (i, &ps) in far.iter().enumerate() {
            let l = log.clone();
            sim.schedule_at(Time::from_ps(ps), move |_| l.borrow_mut().push(i as u32));
        }
        // A near event first, to force cascades from a non-zero cursor.
        sim.schedule_in(Span::from_ns(1), record(&log, 99));
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(*log.borrow(), vec![99, 0, 1, 2, 3, 4]);
        assert_eq!(sim.now().as_ps(), (1 << 60) + 12_345);
    }

    /// `Time::MAX` is schedulable: it parks in the top level, never blocks
    /// earlier events, and fires last when actually run to.
    #[test]
    fn wheel_time_max_is_schedulable() {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.schedule_at(Time::MAX, record(&log, 2));
        sim.schedule_in(Span::from_ns(1), record(&log, 1));
        sim.set_horizon(Time::from_ps(u64::MAX - 1));
        assert_eq!(sim.run(), RunOutcome::HorizonReached);
        assert_eq!(*log.borrow(), vec![1]);
        assert_eq!(sim.pending(), 1);
        sim.set_horizon(Time::MAX);
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(*log.borrow(), vec![1, 2]);
        assert_eq!(sim.now(), Time::MAX);
    }

    /// The rewind path: a horizon-limited peek cascades the wheel cursor
    /// ahead of `now`; scheduling into the gap must still dispatch in time
    /// order.
    #[test]
    fn wheel_rewind_after_horizon_peek() {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        // One far event in a level-1 bucket whose start (tick 64) is inside
        // the horizon while the event itself is beyond it: the peek cascades
        // the bucket (advancing the cursor) and then stops.
        sim.schedule_at(Time::from_ps(65 * TICK + 7), record(&log, 3));
        sim.set_horizon(Time::from_ps(65 * TICK));
        assert_eq!(sim.run(), RunOutcome::HorizonReached);
        assert!(log.borrow().is_empty());
        // Now schedule between `now` (0) and the cascaded cursor.
        sim.schedule_at(Time::from_ps(100), record(&log, 1));
        sim.schedule_at(Time::from_ps(20 * TICK), record(&log, 2));
        sim.set_horizon(Time::MAX);
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
    }

    /// A drained tick can straddle the horizon: its events sit staged in the
    /// ready run, beyond the horizon, with `now` still behind. An insert
    /// into the gap must spill the staged tick back into the wheel (else the
    /// stale run would dispatch first and time would go backwards).
    #[test]
    fn wheel_gap_insert_while_tick_straddles_horizon() {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.schedule_at(Time::from_ps(100), record(&log, 1));
        // Tick 2 starts inside the horizon; the event in its upper half is
        // beyond it, so the drained tick stalls in the ready run.
        sim.schedule_at(Time::from_ps(2 * TICK + 900), record(&log, 3));
        sim.set_horizon(Time::from_ps(2 * TICK + 500));
        assert_eq!(sim.run(), RunOutcome::HorizonReached);
        assert_eq!(*log.borrow(), vec![1]);
        // Insert into the gap between `now` (100 ps) and the staged tick.
        sim.schedule_at(Time::from_ps(TICK + 500), record(&log, 2));
        sim.set_horizon(Time::MAX);
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
    }

    /// Lowering the horizon from inside a same-instant batch stops the rest
    /// of the batch, exactly as the heap core's per-event peek did.
    #[test]
    fn horizon_lowered_mid_batch_stops_dispatch() {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.schedule_in(Span::from_ns(10), {
            let log = log.clone();
            move |sim| {
                log.borrow_mut().push(1);
                sim.set_horizon(Time::ZERO); // below the batch instant
            }
        });
        sim.schedule_in(Span::from_ns(10), record(&log, 2));
        assert_eq!(sim.run(), RunOutcome::HorizonReached);
        assert_eq!(*log.borrow(), vec![1]);
        assert_eq!(sim.pending(), 1);
        // Raising it resumes the remainder of the batch.
        sim.set_horizon(Time::MAX);
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(*log.borrow(), vec![1, 2]);
    }

    // ------------------------------------------------------------------
    // Differential suite: the wheel against the retained heap core.
    // ------------------------------------------------------------------

    use crate::heap_ref::RefSim;
    use crate::rng::SimRng;

    /// A deterministic random workload: `n_seed` initial events; each firing
    /// event logs its tag and (pseudo-randomly, from the shared stream)
    /// schedules children at deltas skewed toward collisions (0 included)
    /// and occasionally cancels a previously created token.
    struct DiffWorkload {
        rng: SimRng,
        next_tag: u64,
    }

    impl DiffWorkload {
        /// Pops the next action for a firing event: up to two children with
        /// deltas (ps) drawn from a collision-heavy menu, plus a cancel flag.
        fn actions(&mut self, depth: u32) -> Vec<(u64, bool)> {
            let mut out = Vec::new();
            if depth >= 6 {
                return out;
            }
            let n = (self.rng.next_u64() % 3) as usize; // 0..=2 children
            for _ in 0..n {
                let menu = [0u64, 0, 1, 7, 63, 64, 65, 1000, 4096, 100_000, 1 << 21];
                let delta = menu[(self.rng.next_u64() % menu.len() as u64) as usize];
                let cancelled = self.rng.next_u64().is_multiple_of(5);
                out.push((delta, cancelled));
            }
            out
        }

        fn tag(&mut self) -> u64 {
            self.next_tag += 1;
            self.next_tag
        }
    }

    /// A dispatch log: `(time_ps, tag)` per fired event.
    type DispatchLog = Vec<(u64, u64)>;

    /// Drives the same workload through both cores and returns each
    /// dispatch log plus the final clock.
    fn run_differential(seed: u64, n_seed: usize) -> (DispatchLog, DispatchLog) {
        fn spawn_wheel(
            sim: &mut Sim,
            at: Time,
            tag: u64,
            cancelled: bool,
            w: &Rc<RefCell<DiffWorkload>>,
            log: &Rc<RefCell<Vec<(u64, u64)>>>,
            depth: u32,
        ) {
            let w2 = w.clone();
            let log2 = log.clone();
            let c = Cancel::new();
            if cancelled {
                c.cancel();
            }
            sim.schedule_at(at, move |sim| {
                if c.is_cancelled() {
                    return;
                }
                log2.borrow_mut().push((sim.now().as_ps(), tag));
                let acts = w2.borrow_mut().actions(depth);
                for (delta, cancelled) in acts {
                    let tag = w2.borrow_mut().tag();
                    let at = sim.now() + Span::from_ps(delta);
                    spawn_wheel(sim, at, tag, cancelled, &w2, &log2, depth + 1);
                }
            });
        }

        fn spawn_heap(
            sim: &mut RefSim,
            at: Time,
            tag: u64,
            cancelled: bool,
            w: &Rc<RefCell<DiffWorkload>>,
            log: &Rc<RefCell<Vec<(u64, u64)>>>,
            depth: u32,
        ) {
            let w2 = w.clone();
            let log2 = log.clone();
            let c = Cancel::new();
            if cancelled {
                c.cancel();
            }
            sim.schedule_at(at, move |sim| {
                if c.is_cancelled() {
                    return;
                }
                log2.borrow_mut().push((sim.now().as_ps(), tag));
                let acts = w2.borrow_mut().actions(depth);
                for (delta, cancelled) in acts {
                    let tag = w2.borrow_mut().tag();
                    let at = sim.now() + Span::from_ps(delta);
                    spawn_heap(sim, at, tag, cancelled, &w2, &log2, depth + 1);
                }
            });
        }

        let seeds: Vec<(u64, u64, bool)> = {
            // Pre-draw the seed events so both cores see identical input.
            let mut rng = SimRng::from_seed(seed).split("diff-seed");
            (0..n_seed)
                .map(|i| {
                    let menu = [0u64, 1, 63, 64, 1000, 4096, 1 << 18, 1 << 30];
                    let at = menu[(rng.next_u64() % menu.len() as u64) as usize]
                        + rng.next_u64() % 128;
                    (at, i as u64 + 1_000_000, rng.next_u64().is_multiple_of(7))
                })
                .collect()
        };

        let wheel_log = Rc::new(RefCell::new(Vec::new()));
        {
            let w = Rc::new(RefCell::new(DiffWorkload {
                rng: SimRng::from_seed(seed).split("diff-act"),
                next_tag: 0,
            }));
            let mut sim = Sim::new();
            for &(at, tag, cancelled) in &seeds {
                spawn_wheel(&mut sim, Time::from_ps(at), tag, cancelled, &w, &wheel_log, 0);
            }
            assert_eq!(sim.run(), RunOutcome::Drained);
        }

        let heap_log = Rc::new(RefCell::new(Vec::new()));
        {
            let w = Rc::new(RefCell::new(DiffWorkload {
                rng: SimRng::from_seed(seed).split("diff-act"),
                next_tag: 0,
            }));
            let mut sim = RefSim::new();
            for &(at, tag, cancelled) in &seeds {
                spawn_heap(&mut sim, Time::from_ps(at), tag, cancelled, &w, &heap_log, 0);
            }
            assert!(sim.run());
        }

        let a = Rc::try_unwrap(wheel_log).unwrap().into_inner();
        let b = Rc::try_unwrap(heap_log).unwrap().into_inner();
        (a, b)
    }

    /// The wheel pops the identical `(time, seq)` sequence as the reference
    /// heap on randomized schedule/cancel/same-instant workloads. The
    /// workload itself is order-sensitive (each fired event draws from a
    /// shared RNG stream), so any ordering divergence compounds and is
    /// caught by the log comparison.
    #[test]
    fn differential_wheel_matches_heap_reference() {
        for seed in 0..24u64 {
            let (wheel, heap) = run_differential(seed, 40);
            assert!(!wheel.is_empty(), "seed {seed}: empty workload");
            assert_eq!(wheel, heap, "seed {seed}: dispatch sequences diverged");
            let mut sorted = wheel.clone();
            sorted.sort_by_key(|&(t, _)| t);
            assert_eq!(wheel.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
                sorted.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
                "seed {seed}: time went backwards");
        }
    }

    /// Same differential under horizon chopping: run both cores horizon
    /// window by horizon window (stressing the peek/rewind path) and compare.
    #[test]
    fn differential_with_horizon_windows() {
        for seed in 0..8u64 {
            let mut rng = SimRng::from_seed(seed).split("windows");
            // Simple self-contained workload: 64 tagged one-shot events.
            let events: Vec<(u64, u64)> =
                (0..64u64).map(|i| (rng.next_u64() % 2_000_000, i)).collect();

            let wheel_log = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Sim::new();
            for &(at, tag) in &events {
                let l = wheel_log.clone();
                sim.schedule_at(Time::from_ps(at), move |s| {
                    l.borrow_mut().push((s.now().as_ps(), tag));
                });
            }
            let heap_log = Rc::new(RefCell::new(Vec::new()));
            let mut href = RefSim::new();
            for &(at, tag) in &events {
                let l = heap_log.clone();
                href.schedule_at(Time::from_ps(at), move |s| {
                    l.borrow_mut().push((s.now().as_ps(), tag));
                });
            }
            // Advance both in identical 100 ns horizon windows, scheduling a
            // straggler into the gap after each window (exercises rewind).
            for (w, straggler) in (1..=21u64).map(|w| (w, w % 3 == 0)) {
                let h = Time::from_ps(w * 100_000);
                sim.set_horizon(h);
                sim.run();
                href.set_horizon(h);
                href.run();
                if straggler && sim.now() < h {
                    let at = sim.now() + Span::from_ps(50);
                    let tag = 1000 + w;
                    let l = wheel_log.clone();
                    sim.schedule_at(at, move |s| l.borrow_mut().push((s.now().as_ps(), tag)));
                    let l = heap_log.clone();
                    href.schedule_at(at, move |s| l.borrow_mut().push((s.now().as_ps(), tag)));
                }
            }
            sim.set_horizon(Time::MAX);
            sim.run();
            href.set_horizon(Time::MAX);
            href.run();
            assert_eq!(*wheel_log.borrow(), *heap_log.borrow(), "seed {seed}");
        }
    }

    // ------------------------------------------------------------------
    // Slab recycling properties.
    // ------------------------------------------------------------------

    /// Freelist recycling never aliases a live event: across random
    /// schedule/fire interleavings every scheduled tag fires exactly once
    /// with its own payload, even though slots are heavily reused.
    #[test]
    fn slab_recycling_never_aliases_live_events() {
        for seed in 0..8u64 {
            let mut rng = SimRng::from_seed(seed).split("slab");
            let mut sim = Sim::new();
            let fired = Rc::new(RefCell::new(std::collections::HashMap::new()));
            let mut expected = Vec::new();
            let mut t = 0u64;
            for round in 0..200u64 {
                t += rng.next_u64() % 50;
                let tag = round;
                expected.push(tag);
                let f = fired.clone();
                sim.schedule_at(Time::from_ps(t), move |_| {
                    *f.borrow_mut().entry(tag).or_insert(0u32) += 1;
                });
                // Interleave dispatch so slots recycle while others are live.
                if round % 7 == 0 {
                    sim.set_event_budget(3);
                    sim.run();
                    sim.set_event_budget(u64::MAX);
                }
            }
            sim.run();
            let fired = fired.borrow();
            for tag in expected {
                assert_eq!(fired.get(&tag), Some(&1), "seed {seed}: tag {tag} fired != once");
            }
            // Slots were actually recycled: far fewer than one per event.
            assert!(sim.event_slots() < 200, "no recycling happened: {}", sim.event_slots());
        }
    }

    /// Cancellation tokens stay correct across slot recycling: a token
    /// cancels exactly its own event even when the event's slab slot has
    /// been recycled from (and is later recycled to) other events.
    #[test]
    fn slab_cancel_tokens_survive_recycling() {
        let mut sim = Sim::new();
        let fired = Rc::new(RefCell::new(Vec::new()));
        // Phase 1: burn slots so the freelist is warm.
        for i in 0..32u64 {
            let f = fired.clone();
            sim.schedule_at(Time::from_ps(i), move |_| f.borrow_mut().push(("warm", i)));
        }
        sim.run();
        // Phase 2: schedule cancellable events into recycled slots; cancel
        // odd ones *after* more recycling traffic has reused further slots.
        let mut tokens = Vec::new();
        for i in 0..32u64 {
            let c = Cancel::new();
            let f = fired.clone();
            let c2 = c.clone();
            sim.schedule_at(Time::from_ps(1000 + i), move |_| {
                if !c2.is_cancelled() {
                    f.borrow_mut().push(("live", i));
                }
            });
            tokens.push(c);
        }
        for i in 0..16u64 {
            let f = fired.clone();
            sim.schedule_at(Time::from_ps(500 + i), move |_| f.borrow_mut().push(("mid", i)));
        }
        for (i, c) in tokens.iter().enumerate() {
            if i % 2 == 1 {
                c.cancel();
            }
        }
        sim.run();
        let fired = fired.borrow();
        for i in 0..32u64 {
            let expect = i % 2 == 0;
            assert_eq!(
                fired.contains(&("live", i)),
                expect,
                "event {i}: cancellation crossed slots"
            );
        }
    }

    /// The slab capacity hint is inert: identical dispatch logs for wildly
    /// different hints.
    #[test]
    fn slab_capacity_hint_is_inert() {
        let run_with = |cap: usize| {
            let mut sim = Sim::with_event_capacity(cap);
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut rng = SimRng::from_seed(7).split("cap");
            for i in 0..300u64 {
                let at = rng.next_u64() % 10_000;
                let l = log.clone();
                sim.schedule_at(Time::from_ps(at), move |s| {
                    l.borrow_mut().push((s.now().as_ps(), i));
                });
            }
            sim.run();
            Rc::try_unwrap(log).unwrap().into_inner()
        };
        let a = run_with(0);
        let b = run_with(1);
        let c = run_with(4096);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }
}
