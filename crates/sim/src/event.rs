//! The event queue and simulation driver.
//!
//! [`Sim`] owns a priority queue of scheduled events. An event is an arbitrary
//! `FnOnce(&mut Sim)` closure; components are shared as `Rc<RefCell<_>>`
//! handles that the closures capture. Events scheduled for the same instant
//! fire in scheduling order (a monotone sequence number breaks ties), which
//! makes every run bit-deterministic.

use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::rc::Rc;

use crate::time::{Span, Time};

/// A boxed event callback.
pub type EventFn = Box<dyn FnOnce(&mut Sim)>;

struct Scheduled {
    at: Time,
    seq: u64,
    f: EventFn,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Outcome of [`Sim::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The configured event budget was exhausted before the queue drained.
    BudgetExhausted,
    /// The time horizon was reached before the queue drained.
    HorizonReached,
}

/// The discrete-event simulation driver.
///
/// # Examples
///
/// ```
/// use kus_sim::{Sim, time::Span};
///
/// let mut sim = Sim::new();
/// let hits = std::rc::Rc::new(std::cell::Cell::new(0u32));
/// let h = hits.clone();
/// sim.schedule_in(Span::from_ns(10), move |sim| {
///     h.set(h.get() + 1);
///     let h2 = h.clone();
///     sim.schedule_in(Span::from_ns(5), move |_| h2.set(h2.get() + 1));
/// });
/// sim.run();
/// assert_eq!(hits.get(), 2);
/// assert_eq!(sim.now().as_ns(), 15);
/// ```
pub struct Sim {
    now: Time,
    /// Mirror of `now`, shared with observers (e.g. the tracer) that have no
    /// `&Sim` at the point where they need a timestamp.
    clock: Rc<Cell<Time>>,
    seq: u64,
    queue: BinaryHeap<Scheduled>,
    executed: u64,
    horizon: Time,
    budget: u64,
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl Default for Sim {
    fn default() -> Sim {
        Sim::new()
    }
}

impl Sim {
    /// Creates an empty simulation at time zero with no horizon and a very
    /// large default event budget (a runaway-loop backstop).
    pub fn new() -> Sim {
        Sim {
            now: Time::ZERO,
            clock: Rc::new(Cell::new(Time::ZERO)),
            seq: 0,
            queue: BinaryHeap::new(),
            executed: 0,
            horizon: Time::MAX,
            budget: u64::MAX,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// A shared handle onto the simulation clock. The cell tracks
    /// [`now`](Sim::now) as events execute, letting passive observers (the
    /// tracer, in particular) timestamp themselves without threading a `&Sim`
    /// through every call site.
    pub fn now_handle(&self) -> Rc<Cell<Time>> {
        self.clock.clone()
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Stops [`run`](Sim::run) once virtual time would pass `t`.
    pub fn set_horizon(&mut self, t: Time) {
        self.horizon = t;
    }

    /// Stops [`run`](Sim::run) after `n` further events.
    pub fn set_event_budget(&mut self, n: u64) {
        self.budget = n;
    }

    /// Schedules `f` to run at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: Time, f: impl FnOnce(&mut Sim) + 'static) {
        assert!(at >= self.now, "cannot schedule into the past: {at} < {}", self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, f: Box::new(f) });
    }

    /// Schedules `f` to run `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Span, f: impl FnOnce(&mut Sim) + 'static) {
        self.schedule_at(self.now + delay, f);
    }

    /// Schedules `f` to run at the current instant, after all events already
    /// scheduled for this instant.
    pub fn schedule_now(&mut self, f: impl FnOnce(&mut Sim) + 'static) {
        self.schedule_at(self.now, f);
    }

    /// Executes exactly one event if one is pending within the horizon.
    /// Returns whether an event ran.
    pub fn step(&mut self) -> bool {
        match self.queue.peek() {
            Some(ev) if ev.at <= self.horizon => {}
            _ => return false,
        }
        let ev = self.queue.pop().expect("peeked event vanished");
        debug_assert!(ev.at >= self.now, "event queue went backwards");
        self.now = ev.at;
        self.clock.set(ev.at);
        self.executed += 1;
        (ev.f)(self);
        true
    }

    /// Runs events until the queue drains, the horizon is reached, or the
    /// event budget is exhausted.
    pub fn run(&mut self) -> RunOutcome {
        let mut remaining = self.budget;
        loop {
            if remaining == 0 {
                return RunOutcome::BudgetExhausted;
            }
            if !self.step() {
                return if self.queue.is_empty() {
                    RunOutcome::Drained
                } else {
                    RunOutcome::HorizonReached
                };
            }
            remaining -= 1;
        }
    }

    /// Runs until `pred` returns true (checked after each event), the queue
    /// drains, or limits hit. Returns true if the predicate was satisfied.
    pub fn run_until(&mut self, mut pred: impl FnMut() -> bool) -> bool {
        loop {
            if pred() {
                return true;
            }
            if !self.step() {
                return pred();
            }
        }
    }
}

/// A cancellable handle for a scheduled event.
///
/// The DES kernel keeps no direct reference from handle to queue entry;
/// instead the token is shared with the closure, which checks it on firing.
/// This is the standard "lazy deletion" technique: O(1) cancel, no heap
/// surgery.
///
/// # Examples
///
/// ```
/// use kus_sim::{Sim, event::Cancel, time::Span};
///
/// let mut sim = Sim::new();
/// let fired = std::rc::Rc::new(std::cell::Cell::new(false));
/// let f = fired.clone();
/// let cancel = Cancel::new();
/// let c = cancel.clone();
/// sim.schedule_in(Span::from_ns(1), move |_| {
///     if !c.is_cancelled() {
///         f.set(true);
///     }
/// });
/// cancel.cancel();
/// sim.run();
/// assert!(!fired.get());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cancel(Rc<Cell<bool>>);

impl Cancel {
    /// Creates a live (non-cancelled) token.
    pub fn new() -> Cancel {
        Cancel::default()
    }

    /// Marks the token cancelled.
    pub fn cancel(&self) {
        self.0.set(true);
    }

    /// Whether [`cancel`](Cancel::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    fn record(log: &Rc<RefCell<Vec<u32>>>, v: u32) -> impl FnOnce(&mut Sim) {
        let log = log.clone();
        move |_| log.borrow_mut().push(v)
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.schedule_in(Span::from_ns(30), record(&log, 3));
        sim.schedule_in(Span::from_ns(10), record(&log, 1));
        sim.schedule_in(Span::from_ns(20), record(&log, 2));
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
        assert_eq!(sim.now(), Time::ZERO + Span::from_ns(30));
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for v in 0..16 {
            sim.schedule_in(Span::from_ns(5), record(&log, v));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_now_runs_after_existing_same_instant_events() {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let l2 = log.clone();
        sim.schedule_in(Span::ZERO, {
            let log = log.clone();
            move |sim| {
                log.borrow_mut().push(1);
                sim.schedule_now(record(&l2, 3));
            }
        });
        sim.schedule_in(Span::ZERO, record(&log, 2));
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn events_can_chain() {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        sim.schedule_in(Span::from_ns(1), move |sim| {
            l.borrow_mut().push(1);
            let l2 = l.clone();
            sim.schedule_in(Span::from_ns(1), move |_| l2.borrow_mut().push(2));
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2]);
        assert_eq!(sim.now().as_ns(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Sim::new();
        sim.schedule_in(Span::from_ns(10), |sim| {
            sim.schedule_at(Time::from_ps(1), |_| {});
        });
        sim.run();
    }

    #[test]
    fn horizon_stops_run() {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.schedule_in(Span::from_ns(1), record(&log, 1));
        sim.schedule_in(Span::from_ns(100), record(&log, 2));
        sim.set_horizon(Time::ZERO + Span::from_ns(50));
        assert_eq!(sim.run(), RunOutcome::HorizonReached);
        assert_eq!(*log.borrow(), vec![1]);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn budget_stops_run() {
        let mut sim = Sim::new();
        fn reschedule(sim: &mut Sim) {
            sim.schedule_in(Span::from_ns(1), reschedule);
        }
        sim.schedule_in(Span::from_ns(1), reschedule);
        sim.set_event_budget(100);
        assert_eq!(sim.run(), RunOutcome::BudgetExhausted);
        assert_eq!(sim.executed(), 100);
    }

    #[test]
    fn run_until_predicate() {
        let mut sim = Sim::new();
        let count = Rc::new(Cell::new(0u32));
        for _ in 0..10 {
            let c = count.clone();
            sim.schedule_in(Span::from_ns(1), move |_| c.set(c.get() + 1));
        }
        let c = count.clone();
        assert!(sim.run_until(move || c.get() >= 4));
        assert_eq!(count.get(), 4);
    }

    #[test]
    fn cancel_token() {
        let c = Cancel::new();
        assert!(!c.is_cancelled());
        let c2 = c.clone();
        c2.cancel();
        assert!(c.is_cancelled());
    }
}
