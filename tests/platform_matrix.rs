//! Smoke matrix: every mechanism × workload × shape combination must run to
//! completion with its internal verification passing (chains close,
//! adjacency sums match, values recompute) and basic conservation laws
//! holding.

use kus_core::prelude::*;
use kus_core::RunReport;
use kus_workloads::{
    BfsConfig, BfsWorkload, BloomConfig, BloomWorkload, MemcachedConfig, MemcachedWorkload,
    Microbench, MicrobenchConfig,
};

fn run(cfg: PlatformConfig, w: &mut dyn kus_core::Workload) -> RunReport {
    Platform::try_new(cfg).expect("valid config").run(w)
}

fn shapes() -> Vec<(usize, usize)> {
    vec![(1, 1), (1, 6), (2, 4)]
}

fn cfgs(mech: Mechanism) -> Vec<PlatformConfig> {
    shapes()
        .into_iter()
        .map(|(cores, fibers)| {
            PlatformConfig::paper_default()
                .without_replay_device()
                .mechanism(mech)
                .cores(cores)
                .fibers_per_core(fibers)
        })
        .collect()
}

#[test]
fn microbench_matrix() {
    for mech in [Mechanism::OnDemand, Mechanism::Prefetch, Mechanism::SoftwareQueue] {
        for cfg in cfgs(mech) {
            for mlp in [1usize, 2, 4] {
                let shape = (cfg.cores, cfg.fibers_per_core);
                let mut w = Microbench::new(MicrobenchConfig {
                    work_count: 60,
                    mlp,
                    iters_per_fiber: 40, writes_per_iter: 0 });
                let r = run(cfg.clone(), &mut w);
                let expected =
                    40 * mlp as u64 * (shape.0 * shape.1) as u64;
                assert_eq!(r.accesses, expected, "{mech} {shape:?} mlp={mlp}");
                assert!(r.work_insts >= 60 * 40, "work retired");
                assert!(r.elapsed > Span::ZERO);
            }
        }
    }
}

#[test]
fn bfs_matrix() {
    for mech in [Mechanism::Prefetch, Mechanism::SoftwareQueue] {
        for cfg in cfgs(mech) {
            let mut w = BfsWorkload::new(BfsConfig {
                scale: 9,
                max_visits: 120,
                ..BfsConfig::default()
            });
            let r = run(cfg, &mut w);
            assert!(r.accesses > 240, "offset + edge reads");
        }
    }
}

#[test]
fn bloom_matrix() {
    for mech in [Mechanism::Prefetch, Mechanism::SoftwareQueue] {
        for cfg in cfgs(mech) {
            let shape = (cfg.cores, cfg.fibers_per_core);
            let mut w = BloomWorkload::new(BloomConfig {
                n_keys: 2_000,
                bits_per_key: 10,
                k: 4,
                lookups_per_fiber: 60,
                work_count: 50,
                ..BloomConfig::default()
            });
            let r = run(cfg, &mut w);
            assert_eq!(r.accesses, 4 * 60 * (shape.0 * shape.1) as u64);
        }
    }
}

#[test]
fn memcached_matrix() {
    for mech in [Mechanism::Prefetch, Mechanism::SoftwareQueue] {
        for cfg in cfgs(mech) {
            let shape = (cfg.cores, cfg.fibers_per_core);
            let mut w = MemcachedWorkload::new(MemcachedConfig {
                n_items: 1_500,
                value_lines: 4,
                lookups_per_fiber: 50,
                work_count: 50,
                ..MemcachedConfig::default()
            });
            let r = run(cfg, &mut w);
            // >= bucket read + 4 value lines per lookup.
            assert!(r.accesses >= 5 * 50 * (shape.0 * shape.1) as u64);
        }
    }
}

#[test]
fn dram_baselines_run_for_all_workloads() {
    let cfg = PlatformConfig::paper_default().without_replay_device();
    let p = Platform::try_new(cfg).expect("valid config");
    let mut ub = Microbench::new(MicrobenchConfig { work_count: 60, mlp: 1, iters_per_fiber: 50, writes_per_iter: 0 });
    assert!(p.run_baseline(&mut ub).accesses == 50);
    let mut bfs = BfsWorkload::new(BfsConfig { scale: 9, max_visits: 60, ..BfsConfig::default() });
    assert!(p.run_baseline(&mut bfs).accesses > 120);
    let mut bl = BloomWorkload::new(BloomConfig {
        n_keys: 1_000,
        bits_per_key: 10,
        k: 4,
        lookups_per_fiber: 40,
        work_count: 50,
        ..BloomConfig::default()
    });
    assert_eq!(p.run_baseline(&mut bl).accesses, 160);
    let mut mc = MemcachedWorkload::new(MemcachedConfig {
        n_items: 800,
        value_lines: 4,
        lookups_per_fiber: 30,
        work_count: 50,
        ..MemcachedConfig::default()
    });
    assert!(p.run_baseline(&mut mc).accesses >= 150);
}

#[test]
fn context_switch_cost_matters() {
    // The 2 us stock-Pth switch wrecks the prefetch mechanism (why the
    // paper had to optimize the library).
    let mk = || Microbench::new(MicrobenchConfig { work_count: 60, mlp: 1, iters_per_fiber: 80, writes_per_iter: 0 });
    let fast_cfg = PlatformConfig::paper_default().without_replay_device().fibers_per_core(10);
    let slow_cfg = fast_cfg.clone().ctx_switch(Span::from_us(2));
    let fast = Platform::try_new(fast_cfg).expect("valid config").run(&mut mk());
    let slow = Platform::try_new(slow_cfg).expect("valid config").run(&mut mk());
    assert!(
        slow.elapsed > fast.elapsed * 5,
        "2us switches should dominate: {} vs {}",
        slow.elapsed,
        fast.elapsed
    );
}

#[test]
fn swq_ablations_are_strictly_inferior() {
    // The paper: designs lacking the doorbell-request flag or burst reads
    // are "strictly inferior in terms of maximum achievable performance".
    let mk = || Microbench::new(MicrobenchConfig { work_count: 60, mlp: 1, iters_per_fiber: 100, writes_per_iter: 0 });
    let base_cfg = PlatformConfig::paper_default()
        .without_replay_device()
        .mechanism(Mechanism::SoftwareQueue)
        .fibers_per_core(16);
    let optimized = Platform::try_new(base_cfg.clone()).expect("valid config").run(&mut mk());

    let mut no_flag = base_cfg.clone();
    no_flag.swq_doorbell_every_enqueue = true;
    let no_flag = Platform::try_new(no_flag).expect("valid config").run(&mut mk());
    assert!(
        no_flag.elapsed > optimized.elapsed,
        "doorbell-per-enqueue should be slower: {} vs {}",
        no_flag.elapsed,
        optimized.elapsed
    );
    assert!(no_flag.doorbells > optimized.doorbells * 10);

    let mut no_burst = base_cfg.clone();
    no_burst.swq_fetch_burst = 1;
    let no_burst = Platform::try_new(no_burst).expect("valid config").run(&mut mk());
    assert!(
        no_burst.elapsed >= optimized.elapsed,
        "single-descriptor fetches should not beat bursts: {} vs {}",
        no_burst.elapsed,
        optimized.elapsed
    );
}

#[test]
fn posted_writes_are_nearly_free() {
    // §VII: writes don't block the ROB head or prevent context switching.
    let mk = |writes: u32| {
        Microbench::new(MicrobenchConfig {
            work_count: 100,
            mlp: 1,
            iters_per_fiber: 150,
            writes_per_iter: writes,
        })
    };
    let cfg = PlatformConfig::paper_default().without_replay_device().fibers_per_core(10);
    let r0 = Platform::try_new(cfg.clone()).expect("valid config").run(&mut mk(0));
    let r1 = Platform::try_new(cfg).expect("valid config").run(&mut mk(1));
    assert_eq!(r1.writes, 150 * 10);
    assert_eq!(r0.writes, 0);
    let slowdown = r1.elapsed.as_ns_f64() / r0.elapsed.as_ns_f64();
    assert!(slowdown < 1.10, "one posted write/iter should be ~free: {slowdown}");
}

#[test]
#[should_panic(expected = "software-queue writes are not modelled")]
fn swq_writes_are_rejected() {
    let cfg = PlatformConfig::paper_default()
        .without_replay_device()
        .mechanism(Mechanism::SoftwareQueue);
    let mut w = Microbench::new(MicrobenchConfig {
        work_count: 50,
        mlp: 1,
        iters_per_fiber: 10,
        writes_per_iter: 1,
    });
    let _ = Platform::try_new(cfg).expect("valid config").run(&mut w);
}

#[test]
fn smt_doubles_on_demand_throughput() {
    // §III: a second hardware context overlaps a second outstanding access.
    let mk = || Microbench::new(MicrobenchConfig {
        work_count: 100,
        mlp: 1,
        iters_per_fiber: 150,
        writes_per_iter: 0,
    });
    let cfg = PlatformConfig::paper_default()
        .without_replay_device()
        .mechanism(Mechanism::OnDemand);
    let smt1 = Platform::try_new(cfg.clone()).expect("valid config").run(&mut mk());
    let smt2 = Platform::try_new(cfg.smt(2)).expect("valid config").run(&mut mk());
    let speedup = smt2.work_ipc() / smt1.work_ipc();
    assert!((1.7..2.2).contains(&speedup), "SMT-2 speedup {speedup}");
}
