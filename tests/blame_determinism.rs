//! The guarantees the causal blame layer must keep:
//!
//! 1. **Sweep equivalence** — `figures blame` artifacts (JSON and CSV)
//!    are byte-identical between `--jobs 1` and `--jobs 4`.
//! 2. **Seed sensitivity** — distinct seeds walk distinct critical
//!    paths; one seed reproduces its `BlameReport` byte-for-byte.
//! 3. **Bitwise inertness** — with the causal event class off (the
//!    default), the trace stream is byte-identical under every
//!    mechanism to a run that never heard of causality; turning it on
//!    only *extends* the stream with the causal event names.
//! 4. **The telescoping invariant** — on live runs of every mechanism ×
//!    topology, per-hop critical time sums to the population's total
//!    critical time exactly (the per-request equivalent is asserted
//!    inside `BlameReport` construction).

use kus_bench::blame::{run_blame_sweep, BlameSweepSpec};
use kus_bench::sweep::SweepOptions;
use kus_core::prelude::*;
use kus_load::{
    load_experiment, service_factory, ArrivalProcess, BlameReport, EchoService, LoadSpec,
    TierSpec,
};

const MECHANISMS: [Mechanism; 3] =
    [Mechanism::OnDemand, Mechanism::Prefetch, Mechanism::SoftwareQueue];

fn base_cfg(mech: Mechanism) -> PlatformConfig {
    PlatformConfig::paper_default()
        .without_replay_device()
        .mechanism(mech)
        .cores(2)
        .fibers_per_core(4)
        .dataset_bytes(1 << 20)
}

fn base_spec() -> LoadSpec {
    LoadSpec::new(ArrivalProcess::Poisson { rate_rps: 400_000.0 })
        .requests(120)
        .queue_capacity(16)
        .tiers(TierSpec::fanout(4))
}

fn run(spec: LoadSpec, cfg: PlatformConfig) -> RunReport {
    load_experiment("blame-determinism", spec, cfg, service_factory(|| EchoService::new(64)))
        .expect("valid spec")
        .run()
}

fn tiny_sweep() -> BlameSweepSpec {
    let spec = LoadSpec::new(ArrivalProcess::Poisson { rate_rps: 1.0 })
        .requests(80)
        .queue_capacity(16);
    let cfg = PlatformConfig::paper_default()
        .without_replay_device()
        .cores(2)
        .fibers_per_core(4)
        .dataset_bytes(1 << 20);
    BlameSweepSpec::new("echo", service_factory(|| EchoService::new(64)), spec, cfg)
        .mechanisms(&[Mechanism::OnDemand, Mechanism::SoftwareQueue])
        .topologies(&[TierSpec::fanout(4)])
        .rates(&[200_000, 1_500_000])
}

/// `figures blame` artifacts are byte-identical across `--jobs` values.
#[test]
fn blame_sweep_artifacts_are_jobs_invariant() {
    let spec = tiny_sweep();
    let serial = run_blame_sweep(&spec, &SweepOptions::jobs(1));
    let pooled = run_blame_sweep(&spec, &SweepOptions::jobs(4));
    assert_eq!(serial.to_json(), pooled.to_json());
    assert_eq!(serial.to_csv(), pooled.to_csv());
    assert_eq!(serial.render_table(), pooled.render_table());
    assert_eq!(serial.errors().count(), 0);
}

/// One seed reproduces the report byte-for-byte; a different seed walks
/// a different critical path (the arrival draw moves, so queue waits,
/// join resolution, and the tail population all move).
#[test]
fn distinct_seeds_walk_distinct_critical_paths() {
    let report = |seed: u64| {
        let r = run(base_spec(), base_cfg(Mechanism::SoftwareQueue).causal().seed(seed));
        BlameReport::from_run(&r).expect("blameable run").to_json()
    };
    let a = report(33);
    let b = report(33);
    let c = report(34);
    assert_eq!(a, b, "one seed must reproduce its blame byte-for-byte");
    assert_ne!(a, c, "a different seed must walk a different critical path");
}

/// With causality off, every mechanism's event stream is bitwise
/// identical to one that never mentions the flag; with it on, the
/// stream is a strict extension: removing the causal-only event names
/// recovers the original stream exactly, event for event.
#[test]
fn disabled_causality_is_bitwise_inert_under_every_mechanism() {
    for mech in MECHANISMS {
        let plain = run(base_spec(), base_cfg(mech).seed(9));
        let plain2 = run(base_spec(), base_cfg(mech).seed(9));
        let causal = run(base_spec(), base_cfg(mech).causal().seed(9));
        let pt = plain.trace.as_ref().expect("traced");
        let pt2 = plain2.trace.as_ref().expect("traced");
        let ct = causal.trace.as_ref().expect("traced");
        assert_eq!(pt.hash, pt2.hash, "{mech}: causal-off must reproduce");
        assert_eq!(pt.events, pt2.events);
        assert_ne!(pt.hash, ct.hash, "{mech}: causal must extend the stream");
        let stripped: Vec<_> = ct
            .events
            .iter()
            .filter(|e| e.name != "rpc.hop" && e.name != "rpc.tx")
            .copied()
            .collect();
        assert_eq!(
            stripped, pt.events,
            "{mech}: causal events must be additive — never reordering or \
             perturbing the base stream"
        );
    }
}

/// On live runs of every mechanism, the per-hop attribution sums to the
/// population total exactly — blame is a decomposition, not an estimate.
/// (The per-request bit-exact critical-path-equals-sojourn invariant is
/// asserted inside the DAG walk itself.)
#[test]
fn hop_attribution_telescopes_exactly_on_live_runs() {
    for mech in MECHANISMS {
        for tiers in [TierSpec::direct(), TierSpec::rpc(), TierSpec::fanout(4)] {
            let spec = base_spec().tiers(tiers);
            let r = run(spec, base_cfg(mech).causal().seed(21));
            let blame = BlameReport::from_run(&r).expect("blameable run");
            for table in [&blame.overall, &blame.tail] {
                let sum: u64 = table.hops.iter().map(|h| h.critical.as_ps()).sum();
                assert_eq!(
                    sum,
                    table.critical.as_ps(),
                    "{mech}/{}: hop blame must sum to the total exactly",
                    tiers.topology.name(),
                );
            }
            assert_eq!(blame.requests, blame.completed + blame.truncated);
            if tiers.fanout_width() > 0 {
                assert!(
                    blame.overall.hops.iter().any(|h| h.hop.starts_with("rpc.shard")),
                    "{mech}: causal fan-out runs must resolve shard blame",
                );
            }
        }
    }
}
