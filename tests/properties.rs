//! Property-based tests (proptest) of the core data structures and
//! invariants the simulation rests on.

use proptest::prelude::*;

use kus_device::replay::{MatchOutcome, ReplayConfig, ReplayModule};
use kus_device::trace::CoreTrace;
use kus_mem::alloc::BumpAllocator;
use kus_mem::layout::BitArray;
use kus_mem::lfb::LfbPool;
use kus_mem::{Addr, ByteStore, LineAddr};
use kus_sim::{Sim, Span, Time};
use kus_swq::descriptor::Descriptor;
use kus_swq::ring::QueuePair;
use kus_workloads::graph::{kronecker_edges, CsrGraph, KroneckerConfig};
use kus_workloads::bloom::probe_bit;
use kus_sim::SimRng;

use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    /// Events fire in non-decreasing time order, with ties in scheduling
    /// order, regardless of insertion order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(delays in prop::collection::vec(0u64..500, 1..60)) {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (i, &d) in delays.iter().enumerate() {
            let log = log.clone();
            sim.schedule_in(Span::from_ns(d), move |sim| {
                log.borrow_mut().push((sim.now(), i));
            });
        }
        sim.run();
        let log = log.borrow();
        prop_assert_eq!(log.len(), delays.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "stable tie-break");
            }
        }
    }

    /// Bump allocations never overlap and respect alignment.
    #[test]
    fn allocations_never_overlap(
        reqs in prop::collection::vec((1u64..512, 0u32..4), 1..40)
    ) {
        let mut a = BumpAllocator::new(Addr::ZERO, 1 << 20);
        let mut taken: Vec<(u64, u64)> = Vec::new();
        for (size, align_pow) in reqs {
            let align = 1u64 << align_pow;
            let addr = a.alloc(size, align).unwrap();
            prop_assert!(addr.is_aligned(align));
            for &(s, e) in &taken {
                prop_assert!(addr.raw() >= e || addr.raw() + size <= s, "overlap");
            }
            taken.push((addr.raw(), addr.raw() + size));
        }
    }

    /// The byte store round-trips arbitrary little-endian words.
    #[test]
    fn byte_store_round_trips(words in prop::collection::vec(any::<u64>(), 1..64)) {
        let mut m = ByteStore::new(words.len() * 8);
        for (i, &w) in words.iter().enumerate() {
            m.write_u64(Addr::new(i as u64 * 8), w);
        }
        for (i, &w) in words.iter().enumerate() {
            prop_assert_eq!(m.read_u64(Addr::new(i as u64 * 8)), w);
        }
    }

    /// The replay window matches any permutation of its trace whose
    /// displacement stays within the window depth.
    #[test]
    fn replay_matches_bounded_reordering(
        n in 20usize..200,
        seed in any::<u64>(),
    ) {
        let lines: Vec<LineAddr> = (0..n as u64).map(LineAddr::from_index).collect();
        let mut rm = ReplayModule::new(
            CoreTrace::from_lines(lines.clone()),
            ReplayConfig { window_depth: 16, skip_age_limit: 64 },
        );
        // Bounded shuffle: swap adjacent pairs pseudo-randomly (max
        // displacement 1, well within the window).
        let mut order = lines;
        let mut rng = SimRng::from_seed(seed);
        let mut i = 0;
        while i + 1 < order.len() {
            if rng.chance(0.5) {
                order.swap(i, i + 1);
            }
            i += 2;
        }
        for line in order {
            let matched = matches!(rm.lookup(line), MatchOutcome::Replayed { .. });
            prop_assert!(matched);
        }
        prop_assert_eq!(rm.misses.get(), 0);
    }

    /// The descriptor ring neither loses nor duplicates nor reorders
    /// requests under arbitrary interleavings of enqueues and burst fetches.
    #[test]
    fn ring_conserves_descriptors(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut q = QueuePair::new(256);
        let mut sent = Vec::new();
        let mut got = Vec::new();
        let mut tag = 0u64;
        for enqueue in ops {
            if enqueue {
                let d = Descriptor { read_addr: Addr::new(tag * 64), tag };
                if q.enqueue(d).is_ok() {
                    sent.push(tag);
                }
                tag += 1;
            } else {
                got.extend(q.fetch_burst().iter().map(|d| d.tag));
            }
        }
        loop {
            let b = q.fetch_burst();
            if b.is_empty() { break; }
            got.extend(b.iter().map(|d| d.tag));
        }
        prop_assert_eq!(sent, got);
    }

    /// LFB conservation: every allocation is eventually completed, occupancy
    /// never exceeds capacity, and tokens come back exactly once.
    #[test]
    fn lfb_conserves_tokens(batches in prop::collection::vec(1usize..10, 1..20)) {
        let mut sim = Sim::new();
        let mut lfb = LfbPool::new(10);
        let mut next_line = 0u64;
        let mut returned = Vec::new();
        for b in batches {
            let mut lines = Vec::new();
            for _ in 0..b {
                let line = LineAddr::from_index(next_line);
                next_line += 1;
                if lfb.try_allocate(sim.now(), line, Some(line.index())).is_ok() {
                    lines.push(line);
                }
                prop_assert!(lfb.in_use() <= 10);
            }
            for line in lines {
                returned.extend(lfb.complete(&mut sim, line));
            }
        }
        prop_assert_eq!(lfb.in_use(), 0);
        let mut sorted = returned.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), returned.len(), "no token twice");
    }

    /// The Bloom filter never produces false negatives, whatever the keys.
    #[test]
    fn bloom_has_no_false_negatives(keys in prop::collection::vec(any::<u64>(), 1..200)) {
        let m = 1u64 << 16;
        let mut alloc = BumpAllocator::new(Addr::ZERO, 1 << 20);
        let mut store = ByteStore::new(1 << 20);
        let bits = BitArray::alloc(&mut alloc, m).unwrap();
        for &k in &keys {
            for i in 0..4 {
                bits.set(&mut store, probe_bit(k, i, m));
            }
        }
        for &k in &keys {
            for i in 0..4 {
                prop_assert!(bits.get(&store, probe_bit(k, i, m)));
            }
        }
    }

    /// Reference BFS distances satisfy the BFS invariants on random
    /// Kronecker graphs: root at 0; every reached vertex has a neighbour
    /// one level closer; edges never span more than one level.
    #[test]
    fn bfs_distances_are_consistent(scale in 5u32..9, seed in any::<u64>()) {
        let mut rng = SimRng::from_seed(seed);
        let edges = kronecker_edges(KroneckerConfig::graph500(scale), &mut rng);
        let n = 1u64 << scale;
        let g = CsrGraph::from_edges(n, &edges);
        let dist = g.bfs_distances(0);
        prop_assert_eq!(dist[0], Some(0));
        for v in 0..n {
            if let Some(dv) = dist[v as usize] {
                if dv > 0 {
                    let has_parent = g
                        .neighbours(v)
                        .iter()
                        .any(|&w| dist[w as usize] == Some(dv - 1));
                    prop_assert!(has_parent, "vertex {} at level {} has no parent", v, dv);
                }
                for &w in g.neighbours(v) {
                    let dw = dist[w as usize].expect("neighbour of reached vertex is reached");
                    prop_assert!(dw + 1 >= dv && dv + 1 >= dw, "edge spans >1 level");
                }
            }
        }
    }

    /// Time arithmetic: (t + a) + b == t + (a + b) and subtraction inverts.
    #[test]
    fn span_arithmetic_is_consistent(t in 0u64..1_000_000, a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let t0 = Time::from_ps(t);
        let (sa, sb) = (Span::from_ps(a), Span::from_ps(b));
        prop_assert_eq!((t0 + sa) + sb, t0 + (sa + sb));
        prop_assert_eq!((t0 + sa) - sa, t0);
        prop_assert_eq!((t0 + sa) - t0, sa);
    }
}
