//! Property-style tests of the core data structures and invariants the
//! simulation rests on.
//!
//! These were originally written against `proptest`; the workspace is now
//! dependency-free, so each property runs over a deterministic family of
//! seeded cases instead of a shrinking random search. The inputs are drawn
//! from [`SimRng`], so every failure names the exact case that produced it
//! and reproduces bit-for-bit.

use kus_device::replay::{MatchOutcome, ReplayConfig, ReplayModule};
use kus_device::trace::CoreTrace;
use kus_mem::alloc::BumpAllocator;
use kus_mem::layout::BitArray;
use kus_mem::lfb::LfbPool;
use kus_mem::{Addr, ByteStore, LineAddr};
use kus_sim::{FaultPlan, SimRng};
use kus_sim::{Sim, Span, Time};
use kus_swq::descriptor::Descriptor;
use kus_swq::ring::QueuePair;
use kus_workloads::bloom::probe_bit;
use kus_workloads::chaos::{chaos_platform, chaos_workload, run_chaos, scenarios, ChaosConfig};
use kus_workloads::graph::{kronecker_edges, CsrGraph, KroneckerConfig};

use std::cell::RefCell;
use std::rc::Rc;

/// Runs `f` across `cases` deterministic seeds derived from `label`.
fn for_cases(label: &str, cases: u64, mut f: impl FnMut(u64, &mut SimRng)) {
    let root = SimRng::from_seed(0x70_71_0b_e5);
    for case in 0..cases {
        let mut rng = root.split(label).split(&format!("case-{case}"));
        f(case, &mut rng);
    }
}

/// Events fire in non-decreasing time order, with ties in scheduling
/// order, regardless of insertion order.
#[test]
fn event_queue_is_a_stable_priority_queue() {
    for_cases("event-queue", 32, |case, rng| {
        let n = 1 + rng.below(59) as usize;
        let delays: Vec<u64> = (0..n).map(|_| rng.below(500)).collect();
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (i, &d) in delays.iter().enumerate() {
            let log = log.clone();
            sim.schedule_in(Span::from_ns(d), move |sim| {
                log.borrow_mut().push((sim.now(), i));
            });
        }
        sim.run();
        let log = log.borrow();
        assert_eq!(log.len(), delays.len(), "case {case}");
        for w in log.windows(2) {
            assert!(w[0].0 <= w[1].0, "case {case}: time order");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "case {case}: stable tie-break");
            }
        }
    });
}

/// Bump allocations never overlap and respect alignment.
#[test]
fn allocations_never_overlap() {
    for_cases("bump-alloc", 32, |case, rng| {
        let n = 1 + rng.below(39) as usize;
        let mut a = BumpAllocator::new(Addr::ZERO, 1 << 20);
        let mut taken: Vec<(u64, u64)> = Vec::new();
        for _ in 0..n {
            let size = 1 + rng.below(511);
            let align = 1u64 << rng.below(4);
            let addr = a.alloc(size, align).unwrap();
            assert!(addr.is_aligned(align), "case {case}");
            for &(s, e) in &taken {
                assert!(
                    addr.raw() >= e || addr.raw() + size <= s,
                    "case {case}: overlap"
                );
            }
            taken.push((addr.raw(), addr.raw() + size));
        }
    });
}

/// The byte store round-trips arbitrary little-endian words.
#[test]
fn byte_store_round_trips() {
    for_cases("byte-store", 32, |case, rng| {
        let n = 1 + rng.below(63) as usize;
        let words: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let mut m = ByteStore::new(words.len() * 8);
        for (i, &w) in words.iter().enumerate() {
            m.write_u64(Addr::new(i as u64 * 8), w);
        }
        for (i, &w) in words.iter().enumerate() {
            assert_eq!(m.read_u64(Addr::new(i as u64 * 8)), w, "case {case}");
        }
    });
}

/// The replay window matches any permutation of its trace whose
/// displacement stays within the window depth.
#[test]
fn replay_matches_bounded_reordering() {
    for_cases("replay-reorder", 32, |case, rng| {
        let n = 20 + rng.below(180) as usize;
        let lines: Vec<LineAddr> = (0..n as u64).map(LineAddr::from_index).collect();
        let mut rm = ReplayModule::new(
            CoreTrace::from_lines(lines.clone()),
            ReplayConfig { window_depth: 16, skip_age_limit: 64 },
        );
        // Bounded shuffle: swap adjacent pairs pseudo-randomly (max
        // displacement 1, well within the window).
        let mut order = lines;
        let mut i = 0;
        while i + 1 < order.len() {
            if rng.chance(0.5) {
                order.swap(i, i + 1);
            }
            i += 2;
        }
        for line in order {
            let matched = matches!(rm.lookup(line), MatchOutcome::Replayed { .. });
            assert!(matched, "case {case}");
        }
        assert_eq!(rm.misses.get(), 0, "case {case}");
    });
}

/// The descriptor ring neither loses nor duplicates nor reorders
/// requests under arbitrary interleavings of enqueues and burst fetches.
#[test]
fn ring_conserves_descriptors() {
    for_cases("ring-conserve", 32, |case, rng| {
        let n = 1 + rng.below(199) as usize;
        let mut q = QueuePair::new(256);
        let mut sent = Vec::new();
        let mut got = Vec::new();
        let mut tag = 0u64;
        for _ in 0..n {
            if rng.chance(0.5) {
                let d = Descriptor { read_addr: Addr::new(tag * 64), tag };
                if q.enqueue(d).is_ok() {
                    sent.push(tag);
                }
                tag += 1;
            } else {
                got.extend(q.fetch_burst().iter().map(|d| d.tag));
            }
        }
        loop {
            let b = q.fetch_burst();
            if b.is_empty() {
                break;
            }
            got.extend(b.iter().map(|d| d.tag));
        }
        assert_eq!(sent, got, "case {case}");
    });
}

/// LFB conservation: every allocation is eventually completed, occupancy
/// never exceeds capacity, and tokens come back exactly once.
#[test]
fn lfb_conserves_tokens() {
    for_cases("lfb-tokens", 32, |case, rng| {
        let batches = 1 + rng.below(19) as usize;
        let mut sim = Sim::new();
        let mut lfb = LfbPool::new(10);
        let mut next_line = 0u64;
        let mut returned = Vec::new();
        for _ in 0..batches {
            let b = 1 + rng.below(9) as usize;
            let mut lines = Vec::new();
            for _ in 0..b {
                let line = LineAddr::from_index(next_line);
                next_line += 1;
                if lfb.try_allocate(sim.now(), line, Some(line.index())).is_ok() {
                    lines.push(line);
                }
                assert!(lfb.in_use() <= 10, "case {case}");
            }
            for line in lines {
                returned.extend(lfb.complete(&mut sim, line));
            }
        }
        assert_eq!(lfb.in_use(), 0, "case {case}");
        let mut sorted = returned.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), returned.len(), "case {case}: no token twice");
    });
}

/// The Bloom filter never produces false negatives, whatever the keys.
#[test]
fn bloom_has_no_false_negatives() {
    for_cases("bloom-fn", 32, |case, rng| {
        let n = 1 + rng.below(199) as usize;
        let keys: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let m = 1u64 << 16;
        let mut alloc = BumpAllocator::new(Addr::ZERO, 1 << 20);
        let mut store = ByteStore::new(1 << 20);
        let bits = BitArray::alloc(&mut alloc, m).unwrap();
        for &k in &keys {
            for i in 0..4 {
                bits.set(&mut store, probe_bit(k, i, m));
            }
        }
        for &k in &keys {
            for i in 0..4 {
                assert!(bits.get(&store, probe_bit(k, i, m)), "case {case}");
            }
        }
    });
}

/// Reference BFS distances satisfy the BFS invariants on random
/// Kronecker graphs: root at 0; every reached vertex has a neighbour
/// one level closer; edges never span more than one level.
#[test]
fn bfs_distances_are_consistent() {
    for_cases("bfs-consistent", 8, |case, rng| {
        let scale = 5 + rng.below(4) as u32;
        let edges = kronecker_edges(KroneckerConfig::graph500(scale), rng);
        let n = 1u64 << scale;
        let g = CsrGraph::from_edges(n, &edges);
        let dist = g.bfs_distances(0);
        assert_eq!(dist[0], Some(0), "case {case}");
        for v in 0..n {
            if let Some(dv) = dist[v as usize] {
                if dv > 0 {
                    let has_parent = g
                        .neighbours(v)
                        .iter()
                        .any(|&w| dist[w as usize] == Some(dv - 1));
                    assert!(has_parent, "case {case}: vertex {v} at level {dv} has no parent");
                }
                for &w in g.neighbours(v) {
                    let dw = dist[w as usize].expect("neighbour of reached vertex is reached");
                    assert!(
                        dw + 1 >= dv && dv + 1 >= dw,
                        "case {case}: edge spans >1 level"
                    );
                }
            }
        }
    });
}

/// Time arithmetic: (t + a) + b == t + (a + b) and subtraction inverts.
#[test]
fn span_arithmetic_is_consistent() {
    for_cases("span-arith", 64, |case, rng| {
        let t0 = Time::from_ps(rng.below(1_000_000));
        let (sa, sb) = (
            Span::from_ps(rng.below(1_000_000)),
            Span::from_ps(rng.below(1_000_000)),
        );
        assert_eq!((t0 + sa) + sb, t0 + (sa + sb), "case {case}");
        assert_eq!((t0 + sa) - sa, t0, "case {case}");
        assert_eq!((t0 + sa) - t0, sa, "case {case}");
    });
}

/// No-loss/no-duplication under fault injection: for every premade fault
/// plan (latency spikes, dropped/duplicated completions, fetcher stalls),
/// every issued request is resolved exactly once — the run terminates with
/// all fibers complete, the access count matches the workload shape, and
/// anything the plan broke was either retried to completion or explicitly
/// reported as failed. Same seed ⇒ bit-identical timeline and counters.
#[test]
fn fault_plans_lose_and_duplicate_nothing() {
    for s in scenarios() {
        let r = run_chaos(s.plan, s.config);
        let f = r.faults.unwrap_or_else(|| panic!("{}: no fault report", s.name));

        // The plan actually did something (otherwise this test is inert).
        let injected = f.latency_spikes
            + f.stalls
            + f.dropped_completions
            + f.dup_completions
            + f.dropped_doorbells
            + f.tlp_replays;
        assert!(injected > 0, "{}: plan injected nothing", s.name);

        // No loss: the run completed (Platform panics on wedged fibers)
        // and every configured access was issued and resolved.
        let expected =
            (r.cores * r.fibers_per_core) as u64 * s.config.iters_per_fiber;
        assert_eq!(r.accesses, expected, "{}: access count", s.name);

        // No silent duplication: duplicated or late completions are
        // absorbed by tag dedup, never delivered twice. Whatever the plan
        // dropped was recovered by timeout/retry or counted as failed.
        assert!(
            f.stale_completions >= f.dup_completions,
            "{}: dup completions not absorbed by dedup",
            s.name
        );
        assert!(f.retries + f.failed >= f.dropped_completions, "{}: drops unrecovered", s.name);

        // Determinism: the same seed reproduces the run bit-for-bit.
        let r2 = run_chaos(s.plan, s.config);
        assert_eq!(r.accesses, r2.accesses, "{}: accesses differ", s.name);
        assert_eq!(r.elapsed, r2.elapsed, "{}: elapsed differs", s.name);
        assert_eq!(r.work_insts, r2.work_insts, "{}: work differs", s.name);
        assert_eq!(Some(f), r2.faults, "{}: fault counters differ", s.name);
    }
}

/// An all-zero `FaultPlan` is invisible: a run with the inert plan applied
/// is bit-identical to a run that never heard of fault injection, so the
/// paper-figure outputs are untouched by this subsystem.
#[test]
fn inert_fault_plan_changes_nothing() {
    let c = ChaosConfig { iters_per_fiber: 20, ..ChaosConfig::default() };
    let base = {
        let mut w = chaos_workload(c);
        kus_core::Platform::try_new(chaos_platform(c)).expect("valid config").run(&mut w)
    };
    let inert = {
        let mut w = chaos_workload(c);
        kus_core::Platform::try_new(chaos_platform(c).faults(FaultPlan::none())).expect("valid config").run(&mut w)
    };
    assert_eq!(base.elapsed, inert.elapsed);
    assert_eq!(base.accesses, inert.accesses);
    assert_eq!(base.work_insts, inert.work_insts);
    assert_eq!(base.switches, inert.switches);
    assert_eq!(base.doorbells, inert.doorbells);
    assert!(inert.faults.is_none(), "inert plan must not enable the fault layer");
}

/// Tracing is inert: enabling the tracer changes nothing about a run
/// except the presence of the `trace` field. Across seeded cases spanning
/// mechanisms and fault plans, every outcome field of the report —
/// timing, work, accesses, switches, doorbells, occupancy maxima, fault
/// counters — is identical with tracing on and off, and the traced twin of
/// a traced run reproduces the same event hash (the tracer neither
/// schedules events nor draws randomness).
#[test]
fn tracing_never_perturbs_the_run() {
    use kus_workloads::trace_scenarios::run_trace_scenario;
    for_cases("trace-inert", 4, |case, rng| {
        let seed = rng.next_u64();
        let plan = if case % 2 == 0 {
            FaultPlan::none()
        } else {
            scenarios()[case as usize % scenarios().len()].plan
        };
        let c = ChaosConfig { seed, iters_per_fiber: 15, ..ChaosConfig::default() };
        let traced = {
            let mut w = chaos_workload(c);
            let mut cfg = chaos_platform(c).traced();
            if plan.is_active() {
                cfg = cfg.faults(plan);
            }
            kus_core::Platform::try_new(cfg).expect("valid config").run(&mut w)
        };
        let plain = {
            let mut w = chaos_workload(c);
            let mut cfg = chaos_platform(c);
            if plan.is_active() {
                cfg = cfg.faults(plan);
            }
            kus_core::Platform::try_new(cfg).expect("valid config").run(&mut w)
        };
        assert!(plain.trace.is_none(), "case {case}: untraced run grew a trace");
        let t = traced.trace.as_ref().unwrap_or_else(|| panic!("case {case}: no trace"));
        assert!(t.count > 0, "case {case}: empty trace");
        assert_eq!(traced.elapsed, plain.elapsed, "case {case}: elapsed");
        assert_eq!(traced.work_insts, plain.work_insts, "case {case}: work");
        assert_eq!(traced.accesses, plain.accesses, "case {case}: accesses");
        assert_eq!(traced.writes, plain.writes, "case {case}: writes");
        assert_eq!(traced.switches, plain.switches, "case {case}: switches");
        assert_eq!(traced.doorbells, plain.doorbells, "case {case}: doorbells");
        assert_eq!(traced.lfb_max, plain.lfb_max, "case {case}: lfb max");
        assert_eq!(traced.device_path_max, plain.device_path_max, "case {case}: uncore max");
        assert_eq!(traced.faults, plain.faults, "case {case}: fault counters");
    });

    // The canonical scenarios run through the same check against their
    // untraced twins via the determinism suite; here just pin that a traced
    // rerun reproduces the hash (no hidden RNG draws).
    let a = run_trace_scenario("chaos-stalls", 99).expect("scenario");
    let b = run_trace_scenario("chaos-stalls", 99).expect("scenario");
    assert_eq!(
        a.trace.as_ref().map(|t| (t.hash, t.count)),
        b.trace.as_ref().map(|t| (t.hash, t.count)),
    );
}

/// Profiling classifies every picosecond of every core exactly once: over
/// a family of random platform shapes, each core's account sums to the
/// measured window bit-exactly and the totals sum to window × cores. The
/// hooks are also inert — a profiled run's outcome equals its unprofiled
/// twin's — and every profile carries at least one verdict.
#[test]
fn profile_accounting_sums_to_wall_and_is_inert() {
    use kus_core::{Mechanism, Platform, PlatformConfig};
    use kus_workloads::{Microbench, MicrobenchConfig};
    for_cases("profile-invariant", 6, |case, rng| {
        let mechanism = match rng.next_u64() % 3 {
            0 => Mechanism::OnDemand,
            1 => Mechanism::Prefetch,
            _ => Mechanism::SoftwareQueue,
        };
        let cores = 1 + (rng.next_u64() % 2) as usize;
        let fibers = [2, 4, 8][(rng.next_u64() % 3) as usize];
        let mc = MicrobenchConfig {
            work_count: 50 + (rng.next_u64() % 400) as u32,
            mlp: 1 + (rng.next_u64() % 4) as usize,
            iters_per_fiber: 6 + rng.next_u64() % 6,
            writes_per_iter: 0,
        };
        let seed = rng.next_u64();
        let cfg = || {
            PlatformConfig::paper_default()
                .without_replay_device()
                .mechanism(mechanism)
                .cores(cores)
                .fibers_per_core(fibers)
                .seed(seed)
        };
        let profiled = Platform::try_new(cfg().profiled()).expect("valid config").run(&mut Microbench::new(mc));
        let plain = Platform::try_new(cfg()).expect("valid config").run(&mut Microbench::new(mc));

        let p = profiled
            .profile
            .as_ref()
            .unwrap_or_else(|| panic!("case {case}: profiled run carries no profile"));
        let window = p.window();
        assert_eq!(p.timelines.len(), p.ctx.cores, "case {case}: one timeline per core");
        for tl in &p.timelines {
            assert_eq!(
                tl.account.classified(),
                window,
                "case {case}: core {} accounting does not sum to the window",
                tl.track
            );
        }
        assert_eq!(
            p.totals.classified().as_ps(),
            window.as_ps() * p.ctx.cores as u64,
            "case {case}: totals"
        );
        assert!(!p.verdicts.is_empty(), "case {case}: profiler reached no verdict");

        assert!(plain.profile.is_none(), "case {case}: unprofiled run grew a profile");
        assert_eq!(profiled.elapsed, plain.elapsed, "case {case}: elapsed");
        assert_eq!(profiled.work_insts, plain.work_insts, "case {case}: work");
        assert_eq!(profiled.accesses, plain.accesses, "case {case}: accesses");
        assert_eq!(profiled.writes, plain.writes, "case {case}: writes");
        assert_eq!(profiled.switches, plain.switches, "case {case}: switches");
        assert_eq!(profiled.doorbells, plain.doorbells, "case {case}: doorbells");
        assert_eq!(profiled.lfb_max, plain.lfb_max, "case {case}: lfb max");
        assert_eq!(profiled.device_path_max, plain.device_path_max, "case {case}: uncore max");
    });
}

/// Recovery without faults is also invisible in outcome (and its periodic
/// expiry scan never fires a timeout on a healthy run).
#[test]
fn recovery_on_healthy_run_is_quiet() {
    let c = ChaosConfig { iters_per_fiber: 20, ..ChaosConfig::default() };
    let cfg = chaos_platform(c);
    let recovery = kus_core::SwqRecovery::for_device_latency(cfg.device_latency);
    let r = {
        let mut w = chaos_workload(c);
        kus_core::Platform::try_new(cfg.swq_recovery(recovery)).expect("valid config").run(&mut w)
    };
    let f = r.faults.expect("recovery enabled: report present");
    assert_eq!(f, kus_core::FaultReport::default(), "healthy run must not trip recovery");
}

/// The overload-control machinery is inert by default: across a seeded
/// family of serving shapes (rate, queue depth, fiber count, platform
/// seed), a spec that explicitly selects `Static` admission, the inert
/// retry policy, and an empty serving fault plan produces a run
/// bit-identical to one that never mentions overload control — same trace
/// fingerprint, same event count, same report JSON, and no sheds charged
/// to the new causes.
#[test]
fn overload_defaults_are_inert_across_shapes() {
    use kus_load::{
        load_experiment, service_factory, AdmissionControl, ArrivalProcess, EchoService,
        LoadReport, LoadSpec, RetryPolicy,
    };

    for_cases("overload-inert", 8, |case, rng| {
        let rate = 500_000.0 * (1 + rng.below(6)) as f64;
        let queue = 8 + rng.below(56) as usize;
        let fibers = 2 + rng.below(7) as usize;
        let seed = rng.below(1 << 30);
        let run = |configured: bool| {
            let mut spec = LoadSpec::new(ArrivalProcess::Poisson { rate_rps: rate })
                .requests(120)
                .queue_capacity(queue);
            if configured {
                spec = spec
                    .admission(AdmissionControl::Static)
                    .retry(RetryPolicy::none())
                    .faults(FaultPlan::none());
            }
            let cfg = kus_core::PlatformConfig::paper_default()
                .without_replay_device()
                .fibers_per_core(fibers)
                .seed(seed)
                .traced();
            load_experiment("inert", spec, cfg, service_factory(|| EchoService::new(256)))
                .expect("valid spec")
                .run()
        };
        let (plain, explicit) = (run(false), run(true));
        let (tp, te) = (plain.trace.as_ref().unwrap(), explicit.trace.as_ref().unwrap());
        assert_eq!(tp.hash, te.hash, "case {case}: trace hash diverged");
        assert_eq!(tp.count, te.count, "case {case}: event count diverged");
        let (rp, re) =
            (LoadReport::from_run(&plain).unwrap(), LoadReport::from_run(&explicit).unwrap());
        assert_eq!(rp.to_json(), re.to_json(), "case {case}: report diverged");
        assert_eq!((rp.shed_deadline, rp.shed_admission, rp.retries), (0, 0, 0), "case {case}");
    });
}
