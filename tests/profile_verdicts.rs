//! Acceptance: `figures --profile` reproduces the paper's §4 diagnoses.
//!
//! The three fixed scenarios (see `kus_bench::profile`) must each fire the
//! verdict the paper attributes to that configuration, and the suite's JSON
//! artifact must be byte-identical across `--jobs` values and repeated
//! same-seed runs — the contract CI enforces by diffing two invocations.

use kus_bench::profile::run_profile_suite;
use kus_bench::SweepOptions;

/// The paper's three diagnoses, each asserted against its scenario:
/// on-demand blames blocking on the device (§4.1), prefetch beyond the LFB
/// window blames LFB saturation (§4.2), and an SWQ with a starved fetcher
/// blames ring/queueing (§4.3).
#[test]
fn paper_diagnoses_reproduce() {
    let suite = run_profile_suite(7, &SweepOptions::jobs(2));
    assert_eq!(suite.outcomes.len(), 3);
    for o in &suite.outcomes {
        let p = o.outcome.as_ref().unwrap_or_else(|e| panic!("{}: failed: {e}", o.name));
        assert!(
            o.matched(),
            "{}: expected one of {:?}, got {:?}",
            o.name,
            o.expect,
            p.verdicts.iter().map(|v| v.name).collect::<Vec<_>>()
        );
    }
    assert!(suite.satisfied());

    // Spot-check the evidence behind each diagnosis, not just the labels.
    let ondemand = suite.outcomes[0].outcome.as_ref().unwrap();
    assert!(
        ondemand.totals.blocked_load > ondemand.totals.compute,
        "on-demand must spend more time blocked than computing"
    );

    let prefetch = suite.outcomes[1].outcome.as_ref().unwrap();
    assert!(
        prefetch.pressure.lfb_occupancy.max().as_ps() >= prefetch.ctx.lfb_capacity,
        "prefetch at MLP 16 must pin the {}-entry LFB window",
        prefetch.ctx.lfb_capacity
    );
    assert!(prefetch.pressure.lfb_full_events > 0, "allocations must bounce off full LFBs");

    let swq = suite.outcomes[2].outcome.as_ref().unwrap();
    assert!(swq.blame.requests > 0, "SWQ blame table must cover requests");
    assert!(
        swq.blame.share("doorbell_wait") + swq.blame.share("ring_wait") >= 0.4,
        "starved fetcher must make queueing the dominant blame"
    );
}

/// The suite artifact is a pure function of the seed: byte-identical across
/// worker counts and repeated runs, and a different seed moves it.
#[test]
fn suite_json_is_jobs_and_rerun_stable() {
    let a = run_profile_suite(7, &SweepOptions::jobs(1)).to_json();
    let b = run_profile_suite(7, &SweepOptions::jobs(4)).to_json();
    assert_eq!(a, b, "profile JSON diverged across --jobs values");
    let c = run_profile_suite(7, &SweepOptions::jobs(2)).to_json();
    assert_eq!(a, c, "profile JSON diverged across reruns");
}
