//! Integration tests of the record/replay measurement discipline (§IV-A):
//! the emulator's internals must never perturb measured timing, replay
//! must serve (essentially) every request, and runs must be deterministic.

use kus_core::prelude::*;
use kus_workloads::{
    BloomConfig, BloomWorkload, MemcachedConfig, MemcachedWorkload, Microbench, MicrobenchConfig,
};

fn ubench(iters: u64, mlp: usize) -> Microbench {
    Microbench::new(MicrobenchConfig { work_count: 100, mlp, iters_per_fiber: iters, writes_per_iter: 0 })
}

/// The replay device must be time-identical to the idealized device: its
/// whole design exists so internal latencies hide behind the configured
/// response delay.
#[test]
fn replay_phase_timing_equals_ideal_phase() {
    for (mech, fibers) in [(Mechanism::Prefetch, 8usize), (Mechanism::SoftwareQueue, 12)] {
        let ideal_cfg = PlatformConfig::paper_default()
            .without_replay_device()
            .mechanism(mech)
            .fibers_per_core(fibers);
        let mut w = ubench(300, 1);
        let ideal = Platform::try_new(ideal_cfg.clone()).expect("valid config").run(&mut w);
        let mut replay_cfg = ideal_cfg;
        replay_cfg.use_replay_device = true;
        let replay = Platform::try_new(replay_cfg).expect("valid config").run(&mut w);
        assert_eq!(
            ideal.elapsed, replay.elapsed,
            "replay changed timing under {mech}: {} vs {}",
            ideal.elapsed, replay.elapsed
        );
    }
}

/// In the measured (replay) run, essentially every request matches the
/// recorded trace, nothing misses its deadline, and the on-demand module
/// sits idle — the paper's health conditions for the methodology.
#[test]
fn replay_serves_everything_within_deadline() {
    let cfg = PlatformConfig::paper_default().fibers_per_core(10);
    let mut w = ubench(400, 1);
    let r = Platform::try_new(cfg).expect("valid config").run(&mut w);
    let d = r.device.expect("device-backed run");
    assert_eq!(d.responses, r.accesses);
    assert_eq!(d.ondemand, 0, "no request should fall back to on-demand");
    assert_eq!(d.deadline_misses, 0, "device internals must hide behind the delay");
    assert_eq!(d.replayed, r.accesses);
}

/// Replay must also hold up for the applications, whose access sequences
/// interleave many fibers and varying line counts; small reorderings are
/// absorbed by the window, not punted to the on-demand module.
#[test]
fn replay_handles_application_sequences() {
    let cfg = PlatformConfig::paper_default().fibers_per_core(4);
    let mut w = BloomWorkload::new(BloomConfig {
        n_keys: 5_000,
        bits_per_key: 10,
        k: 4,
        lookups_per_fiber: 150,
        work_count: 80,
        ..BloomConfig::default()
    });
    let r = Platform::try_new(cfg.clone()).expect("valid config").run(&mut w);
    let d = r.device.unwrap();
    assert_eq!(d.deadline_misses, 0);
    let ondemand_frac = d.ondemand as f64 / d.responses as f64;
    assert!(ondemand_frac < 0.01, "on-demand fraction {ondemand_frac}");

    let mut w = MemcachedWorkload::new(MemcachedConfig {
        n_items: 2_000,
        value_lines: 4,
        lookups_per_fiber: 80,
        work_count: 80,
        ..MemcachedConfig::default()
    });
    let r = Platform::try_new(cfg).expect("valid config").run(&mut w);
    let d = r.device.unwrap();
    assert_eq!(d.deadline_misses, 0);
    let ondemand_frac = d.ondemand as f64 / d.responses as f64;
    assert!(ondemand_frac < 0.01, "on-demand fraction {ondemand_frac}");
}

/// Identical seeds give bit-identical runs.
#[test]
fn runs_are_deterministic_in_the_seed() {
    let run = |seed: u64| {
        let cfg = PlatformConfig::paper_default().fibers_per_core(6).seed(seed);
        let mut w = ubench(200, 2);
        let r = Platform::try_new(cfg).expect("valid config").run(&mut w);
        (r.elapsed, r.work_insts, r.accesses, r.switches)
    };
    assert_eq!(run(1), run(1));
    // Note: the microbenchmark's *timing* is structurally seed-invariant
    // (every chain access misses regardless of which lines it visits), so
    // equality across seeds is expected there. Seed sensitivity is checked
    // below on a workload whose access structure depends on the data.
    let run_kv = |seed: u64| {
        let cfg = PlatformConfig::paper_default().fibers_per_core(4).seed(seed);
        let mut w = MemcachedWorkload::new(MemcachedConfig {
            n_items: 2_000,
            value_lines: 4,
            lookups_per_fiber: 120,
            work_count: 80,
            ..MemcachedConfig::default()
        });
        let r = Platform::try_new(cfg).expect("valid config").run(&mut w);
        (r.elapsed, r.accesses)
    };
    assert_eq!(run_kv(3), run_kv(3));
    let a = run_kv(3);
    let b = run_kv(4);
    assert_ne!(a, b, "different keys give different probe structure");
}

/// The two-phase discipline records exactly the measured run's accesses:
/// access counts agree between the report and the device's served count
/// across mechanisms and MLP.
#[test]
fn request_conservation_across_mechanisms() {
    for mech in [Mechanism::OnDemand, Mechanism::Prefetch, Mechanism::SoftwareQueue] {
        for mlp in [1usize, 2] {
            let fibers = if mech == Mechanism::OnDemand { 1 } else { 6 };
            let cfg = PlatformConfig::paper_default().mechanism(mech).fibers_per_core(fibers);
            let mut w = ubench(120, mlp);
            let r = Platform::try_new(cfg).expect("valid config").run(&mut w);
            let d = r.device.expect("device run");
            assert_eq!(
                d.responses, r.accesses,
                "served == issued under {mech} mlp={mlp}"
            );
        }
    }
}


/// Jittered response times must not break the record/replay discipline:
/// samples are a pure function of (core, sequence), so both phases see the
/// same timing and the replay still serves everything.
#[test]
fn replay_holds_under_latency_jitter() {
    // 2 us leaves >1 us of internal service time, so the 800 ns spread is
    // not clamped (the interconnect round trip cannot jitter away).
    let cfg = PlatformConfig::paper_default()
        .device_latency(Span::from_us(2))
        .device_jitter(Span::from_ns(800))
        .fibers_per_core(8);
    let mut w = ubench(250, 1);
    let r = Platform::try_new(cfg).expect("valid config").run(&mut w);
    let d = r.device.expect("device run");
    assert_eq!(d.ondemand, 0, "jitter reordering stays within the replay window");
    assert_eq!(d.deadline_misses, 0);
    // The host-observed latency distribution reflects the spread.
    let h = r.fill_latency.expect("histogram");
    assert!(h.max() > h.min() + Span::from_ns(500), "spread visible: {:?}..{:?}", h.min(), h.max());
}
