//! Overload-control guarantees that hold the whole subsystem together:
//!
//! 1. **Chaos determinism** — an AdaptiveConcurrency sweep under a
//!    serving-layer chaos plan (freeze windows + fiber crashes +
//!    dispatcher stalls) emits byte-identical JSON/CSV artifacts at
//!    `--jobs 1` and `--jobs 4`, and the same seed reproduces the same
//!    trace fingerprint run-to-run.
//! 2. **Inertness** — a spec that explicitly selects the overload-control
//!    defaults (`Static` admission, inert retry policy, empty fault plan)
//!    is bitwise-indistinguishable from a spec that never mentions them:
//!    same trace fingerprint, same event count, same report JSON. The
//!    overload machinery costs nothing unless it is asked for.

use kus_bench::overload::{run_overload_sweep, OverloadSweepSpec};
use kus_bench::sweep::SweepOptions;
use kus_core::prelude::*;
use kus_load::{
    load_experiment, service_factory, AdmissionControl, ArrivalProcess, EchoService, LoadReport,
    LoadSpec, RetryPolicy, SloSpec,
};
use kus_sim::fault::FaultPlan;
use kus_sim::Span;

fn chaos_plan() -> FaultPlan {
    FaultPlan::none()
        .with_freeze_windows(Span::from_us(60), Span::from_us(25), Span::from_us(20))
        .with_fiber_crashes(0.02, Span::from_us(3))
        .with_dispatcher_stalls(0.05, Span::from_us(5))
}

fn chaos_sweep() -> OverloadSweepSpec {
    let spec = LoadSpec::new(ArrivalProcess::Poisson { rate_rps: 1.0 })
        .requests(150)
        .queue_capacity(32)
        .slo(SloSpec::none().p99(Span::from_us(40)));
    let cfg = PlatformConfig::paper_default()
        .without_replay_device()
        .cores(2)
        .fibers_per_core(4)
        .seed(11);
    OverloadSweepSpec::new(
        "echo",
        service_factory(|| EchoService::new(256)),
        spec,
        cfg,
    )
    .policies(&[AdmissionControl::AdaptiveConcurrency { initial: 4, max: 16, window: 16 }])
    .plans(&[("chaos".into(), chaos_plan())])
    .rates(&[2_000_000])
}

/// Same seed, same chaos, any `--jobs`: the artifacts are byte-identical.
#[test]
fn adaptive_chaos_sweep_is_byte_identical_across_jobs() {
    let serial = run_overload_sweep(&chaos_sweep(), &SweepOptions::jobs(1));
    let parallel = run_overload_sweep(&chaos_sweep(), &SweepOptions::jobs(4));
    assert!(serial.errors().is_empty(), "{:?}", serial.errors());
    assert_eq!(serial.to_json(), parallel.to_json());
    assert_eq!(serial.to_csv(), parallel.to_csv());
    // The chaos really bit: crashes and stalls are in the artifact.
    let (report, _) = serial.cells[0].outcome.as_ref().unwrap();
    assert!(report.crashes + report.dispatcher_stalls > 0, "chaos plan was a no-op");
    assert!(!report.fault_windows.is_empty(), "freeze windows missing from the trace");
}

/// Same seed, two fresh runs: identical trace fingerprint under chaos.
#[test]
fn chaos_run_fingerprint_is_reproducible() {
    let run = || {
        let spec = LoadSpec::new(ArrivalProcess::Poisson { rate_rps: 2_000_000.0 })
            .requests(150)
            .queue_capacity(32)
            .admission(AdmissionControl::AdaptiveConcurrency { initial: 4, max: 16, window: 16 })
            .faults(chaos_plan());
        let cfg = PlatformConfig::paper_default()
            .without_replay_device()
            .fibers_per_core(4)
            .seed(11)
            .traced();
        load_experiment("chaos", spec, cfg, service_factory(|| EchoService::new(256)))
            .expect("valid spec")
            .run()
    };
    let (a, b) = (run(), run());
    let (ta, tb) = (a.trace.as_ref().unwrap(), b.trace.as_ref().unwrap());
    assert_eq!(ta.hash, tb.hash);
    assert_eq!(ta.count, tb.count);
}

/// Explicit defaults are bitwise-inert: selecting `Static` + no retries +
/// an empty fault plan reproduces the untouched spec exactly — trace
/// fingerprint, event count, and report JSON.
#[test]
fn explicit_overload_defaults_are_bitwise_inert() {
    let run = |configured: bool| {
        let mut spec = LoadSpec::new(ArrivalProcess::Poisson { rate_rps: 2_000_000.0 })
            .requests(200)
            .queue_capacity(32);
        if configured {
            spec = spec
                .admission(AdmissionControl::Static)
                .retry(RetryPolicy::none())
                .faults(FaultPlan::none());
        }
        let cfg = PlatformConfig::paper_default()
            .without_replay_device()
            .fibers_per_core(4)
            .seed(7)
            .traced();
        load_experiment("inert", spec, cfg, service_factory(|| EchoService::new(256)))
            .expect("valid spec")
            .run()
    };
    let (plain, explicit) = (run(false), run(true));
    let (tp, te) = (plain.trace.as_ref().unwrap(), explicit.trace.as_ref().unwrap());
    assert_eq!(tp.hash, te.hash, "explicit overload defaults perturbed the trace");
    assert_eq!(tp.count, te.count);
    let (rp, re) =
        (LoadReport::from_run(&plain).unwrap(), LoadReport::from_run(&explicit).unwrap());
    assert_eq!(rp.to_json(), re.to_json());
    assert_eq!(rp.shed, rp.shed_queue_full + rp.shed_deadline + rp.shed_admission);
    assert_eq!((rp.retries, rp.crashes, rp.dispatcher_stalls), (0, 0, 0));
}
