//! Trace determinism: the event stream is a pure function of
//! (configuration, seed).
//!
//! The tracer's binary-encoding hash is the fingerprint: two runs with the
//! same seed and configuration must produce bit-identical event streams
//! (same hash, same count), and different seeds must not collide. This is
//! the contract CI enforces by diffing `figures trace --hash` across two
//! invocations, and the foundation the golden-trace suite builds on.

use kus_core::prelude::*;
use kus_load::{ArrivalProcess, LoadReport, LoadSpec, ServingWorkload};
use kus_sim::trace::hash_events;
use kus_workloads::bloom::{BloomConfig, BloomWorkload};
use kus_workloads::microbench::{Microbench, MicrobenchConfig};
use kus_workloads::trace_scenarios::{run_trace_scenario, run_trace_scenario_opts, trace_scenarios};
use kus_workloads::MemcachedService;

/// A small traced run of `mechanism` driving `workload`, single-phase.
fn run_traced(mechanism: Mechanism, workload: &str, seed: u64) -> RunReport {
    let cfg = PlatformConfig::paper_default()
        .without_replay_device()
        .mechanism(mechanism)
        .fibers_per_core(4)
        .seed(seed)
        .traced();
    match workload {
        "microbench" => {
            let mut w = Microbench::new(MicrobenchConfig {
                work_count: 100,
                mlp: 2,
                iters_per_fiber: 10,
                writes_per_iter: 0,
            });
            Platform::try_new(cfg).expect("valid config").run(&mut w)
        }
        "bloom" => {
            let mut w = BloomWorkload::new(BloomConfig {
                n_keys: 500,
                lookups_per_fiber: 10,
                ..BloomConfig::default()
            });
            Platform::try_new(cfg).expect("valid config").run(&mut w)
        }
        _ => unreachable!("unknown workload {workload}"),
    }
}

fn fingerprint(r: &RunReport) -> (u64, u64) {
    let t = r.trace.as_ref().expect("traced run carries a TraceReport");
    (t.hash, t.count)
}

/// The platform matrix's fingerprints, pinned in source: reproducibility
/// within one build (the test above) is not enough — the stream must also
/// survive *rewrites of the machinery underneath* — the timing-wheel core
/// reproduces the exact streams the original heap core produced (the
/// committed goldens predate the rewrite and still pass), and these
/// constants hold future cores to it. Changing them requires editing this test — do
/// so only for an intentional instrumentation change, never for a
/// scheduler/allocator change (those must be invisible).
#[test]
fn platform_matrix_fingerprints_pinned_in_source() {
    const PINNED: &[(Mechanism, &str, u64, u64)] = &[
        (Mechanism::OnDemand, "microbench", 802992426659715233, 564),
        (Mechanism::Prefetch, "microbench", 17982647613069471200, 684),
        (Mechanism::SoftwareQueue, "microbench", 15950434745468732729, 1080),
        (Mechanism::OnDemand, "bloom", 14957599567877767745, 160),
        (Mechanism::Prefetch, "bloom", 1290797045534035190, 164),
        (Mechanism::SoftwareQueue, "bloom", 14037018213632149953, 2011),
    ];
    let mut diverged = Vec::new();
    for &(mechanism, workload, hash, count) in PINNED {
        let r = run_traced(mechanism, workload, 1);
        if fingerprint(&r) != (hash, count) {
            diverged.push(format!("{mechanism:?}/{workload}: {:?}", fingerprint(&r)));
        }
    }
    assert!(diverged.is_empty(), "fingerprints diverged from source-pinned values:\n{}", diverged.join("\n"));
}

/// Same seed + same configuration ⇒ identical trace hash and event count,
/// across the full mechanism × workload matrix.
#[test]
fn same_seed_same_trace_across_matrix() {
    for mechanism in [Mechanism::OnDemand, Mechanism::Prefetch, Mechanism::SoftwareQueue] {
        for workload in ["microbench", "bloom"] {
            let a = run_traced(mechanism, workload, 11);
            let b = run_traced(mechanism, workload, 11);
            let (ha, ca) = fingerprint(&a);
            let (hb, cb) = fingerprint(&b);
            assert!(ca > 0, "{mechanism:?}/{workload}: empty trace");
            assert_eq!((ha, ca), (hb, cb), "{mechanism:?}/{workload}: nondeterministic trace");
        }
    }
}

/// Distinct seeds reshuffle the workload layout, so the event streams (and
/// their hashes) must differ.
#[test]
fn distinct_seeds_distinct_traces() {
    for mechanism in [Mechanism::OnDemand, Mechanism::SoftwareQueue] {
        let a = run_traced(mechanism, "microbench", 1);
        let b = run_traced(mechanism, "microbench", 2);
        assert_ne!(fingerprint(&a).0, fingerprint(&b).0, "{mechanism:?}: seed did not matter");
    }
}

/// The canonical scenarios (the ones golden-locked and exported by
/// `figures --trace`) are deterministic too, including the chaos plan.
#[test]
fn canonical_scenarios_are_deterministic() {
    for s in trace_scenarios() {
        let a = run_trace_scenario(s.name, 0xC0FFEE).expect("known scenario");
        let b = run_trace_scenario(s.name, 0xC0FFEE).expect("known scenario");
        assert_eq!(fingerprint(&a), fingerprint(&b), "{}: nondeterministic", s.name);
        let c = run_trace_scenario(s.name, 0xC0FFEE + 1).expect("known scenario");
        assert_ne!(fingerprint(&a).0, fingerprint(&c).0, "{}: seed did not matter", s.name);
    }
}

/// A serving scenario — open-loop Poisson traffic into the Memcached
/// service — for the load-determinism row of the matrix.
fn run_load_scenario(mechanism: Mechanism, seed: u64, profiled: bool) -> RunReport {
    let cfg = PlatformConfig::paper_default()
        .without_replay_device()
        .mechanism(mechanism)
        .cores(2)
        .fibers_per_core(4)
        .seed(seed);
    let cfg = if profiled { cfg.profiled() } else { cfg.traced() };
    let spec = LoadSpec::new(ArrivalProcess::Poisson { rate_rps: 1_500_000.0 }).requests(150);
    let mut w = ServingWorkload::new(
        spec,
        Box::new(MemcachedService::new(kus_workloads::MemcachedConfig::default())),
    );
    Platform::try_new(cfg).expect("valid config").run(&mut w)
}

/// Serving runs are as deterministic as batch runs: same seed ⇒ identical
/// trace fingerprint AND byte-identical `LoadReport` JSON (the artifact the
/// load sweep emits); a different seed reshuffles the arrival offsets, so
/// the fingerprint must move.
#[test]
fn load_scenario_same_seed_identical_report() {
    for mechanism in [Mechanism::OnDemand, Mechanism::Prefetch, Mechanism::SoftwareQueue] {
        let a = run_load_scenario(mechanism, 77, false);
        let b = run_load_scenario(mechanism, 77, false);
        assert_eq!(fingerprint(&a), fingerprint(&b), "{mechanism:?}: nondeterministic serving");
        let ra = LoadReport::from_run(&a).expect("load events present");
        let rb = LoadReport::from_run(&b).expect("load events present");
        assert_eq!(ra.to_json(), rb.to_json(), "{mechanism:?}: LoadReport JSON diverged");
        assert_eq!(ra.offered, 150);

        let c = run_load_scenario(mechanism, 78, false);
        assert_ne!(fingerprint(&a).0, fingerprint(&c).0, "{mechanism:?}: seed did not matter");
    }
}

/// A profiled twin of [`run_traced`]: same scenarios, profiler on.
fn run_profiled(mechanism: Mechanism, workload: &str, seed: u64) -> RunReport {
    let cfg = PlatformConfig::paper_default()
        .without_replay_device()
        .mechanism(mechanism)
        .fibers_per_core(4)
        .seed(seed)
        .profiled();
    match workload {
        "microbench" => {
            let mut w = Microbench::new(MicrobenchConfig {
                work_count: 100,
                mlp: 2,
                iters_per_fiber: 10,
                writes_per_iter: 0,
            });
            Platform::try_new(cfg).expect("valid config").run(&mut w)
        }
        "bloom" => {
            let mut w = BloomWorkload::new(BloomConfig {
                n_keys: 500,
                lookups_per_fiber: 10,
                ..BloomConfig::default()
            });
            Platform::try_new(cfg).expect("valid config").run(&mut w)
        }
        _ => unreachable!("unknown workload {workload}"),
    }
}

/// Same seed + same configuration ⇒ byte-identical profile JSON (the
/// artifact `figures --profile` diffs in CI), across the mechanism ×
/// workload matrix. Profiling implies tracing, so the trace fingerprint is
/// covered too.
#[test]
fn same_seed_same_profile_json_across_matrix() {
    for mechanism in [Mechanism::OnDemand, Mechanism::Prefetch, Mechanism::SoftwareQueue] {
        for workload in ["microbench", "bloom"] {
            let a = run_profiled(mechanism, workload, 11);
            let b = run_profiled(mechanism, workload, 11);
            let pa = a.profile.as_ref().expect("profiled run carries a ProfileReport");
            let pb = b.profile.as_ref().expect("profiled run carries a ProfileReport");
            assert_eq!(
                pa.to_json(),
                pb.to_json(),
                "{mechanism:?}/{workload}: nondeterministic profile"
            );
            assert!(
                !pa.verdicts.is_empty(),
                "{mechanism:?}/{workload}: profiler reached no verdict"
            );
        }
    }
}

/// Distinct seeds reshuffle the Poisson arrival offsets, so the SWQ blame
/// tables — which aggregate per-request critical-path timings — must
/// differ. (The closed-loop microbench is *timing*-invariant under reseeding
/// — only addresses move — so the serving scenario is the sensitive probe.)
#[test]
fn distinct_seeds_distinct_blame_tables() {
    let a = run_load_scenario(Mechanism::SoftwareQueue, 1, true);
    let b = run_load_scenario(Mechanism::SoftwareQueue, 2, true);
    let pa = a.profile.expect("profiled");
    let pb = b.profile.expect("profiled");
    assert!(pa.blame.requests > 0, "SWQ run produced no blamed requests");
    assert_ne!(
        format!("{:?}", pa.blame.rows),
        format!("{:?}", pb.blame.rows),
        "seed did not move the blame table"
    );
}

/// The running hash the tracer maintains incrementally equals a one-shot
/// recomputation over the collected events, and the binary log round-trips
/// through encode/decode.
#[test]
fn hash_recomputes_and_log_round_trips() {
    let r = run_trace_scenario("swq-optimized", 5).expect("known scenario");
    let t = r.trace.expect("traced");
    assert_eq!(t.hash, hash_events(&t.events), "incremental hash != recomputation");

    let encoded = kus_sim::trace::encode(&t.events);
    let decoded = kus_sim::trace::decode(&encoded).expect("well-formed log");
    assert_eq!(decoded.len(), t.events.len());
    for (d, e) in decoded.iter().zip(&t.events) {
        assert_eq!(d.at, e.at);
        assert_eq!(d.name, e.name);
        assert_eq!((d.track, d.a0, d.a1), (e.track, e.a0, e.a1));
    }
}

/// The deep per-access event class is deterministic as well, and strictly
/// grows the stream relative to the default class. Only meaningful when the
/// `trace` cargo feature compiled the class in.
#[test]
fn deep_trace_is_deterministic_and_additive() {
    let shallow = run_trace_scenario_opts("ondemand-baseline", 3, false).expect("known");
    let a = run_trace_scenario_opts("ondemand-baseline", 3, true).expect("known");
    let b = run_trace_scenario_opts("ondemand-baseline", 3, true).expect("known");
    assert_eq!(fingerprint(&a), fingerprint(&b), "deep trace nondeterministic");
    if cfg!(feature = "trace") {
        assert!(
            fingerprint(&a).1 > fingerprint(&shallow).1,
            "deep class compiled in but added no events"
        );
    } else {
        assert_eq!(
            fingerprint(&a),
            fingerprint(&shallow),
            "deep flag must be inert without the trace feature"
        );
    }
}
