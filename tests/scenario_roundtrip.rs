//! Exhaustive scenario round-trip: every TOML field ↔ every spec field.
//!
//! The maximal spec below sets *every* `ScenarioSpec` field to a
//! non-default value; `to_toml` destructures exhaustively (a new field
//! that isn't serialized fails to compile), and `finish()` rejects
//! unknown keys (a serialized key without a schema reader fails here). So
//! this suite pins the invariant the corpus depends on:
//! `parse(to_toml(spec)) == spec`, and the compiled fingerprints agree.

use kus_scenario::prelude::*;
use kus_sim::Span;

/// A spec with every field moved off its default.
fn maximal_spec() -> ScenarioSpec {
    let platform = PlatformSpec {
        mechanism: Some(Mechanism::SoftwareQueue),
        cores: Some(4),
        fibers_per_core: Some(8),
        smt: Some(2),
        device_latency: Some(Span::from_us(3)),
        device_jitter: Some(Span::from_ns(250)),
        jitter_model: Some(JitterModel::Bimodal {
            tail_prob: 0.02,
            tail: Span::from_us(5),
        }),
        ctx_switch: Some(Span::from_ns(120)),
        use_replay_device: Some(false),
        dataset_bytes: Some(1 << 22),
        swq_ring_capacity: Some(96),
    };
    let hostile = FaultPlan::none()
        .with_latency_spikes(0.01, Span::from_us(20))
        .with_dispatcher_stalls(0.05, Span::from_us(6))
        .with_freeze_windows(Span::from_us(200), Span::from_us(30), Span::from_us(4));
    let matrix = MatrixSpec {
        policies: vec![
            AdmissionControl::Static,
            AdmissionControl::AdaptiveConcurrency { initial: 4, max: 16, window: 16 },
        ],
        plans: vec![
            ("calm".into(), FaultPlan::none()),
            ("hostile".into(), hostile),
        ],
        rates: vec![500_000, 2_000_000],
        retry_pair: false,
    };
    ScenarioSpec::new(
        "maximal",
        ArrivalProcess::FlashCrowd {
            base_rps: 1_000_000.0,
            spike_rps: 4_000_000.0,
            at: Span::from_us(50),
            rise: Span::from_us(10),
            hold: Span::from_us(40),
            fall: Span::from_us(20),
        },
    )
    .description("every field off its default")
    .seed(42)
    .requests(200)
    .keys(KeyPopularity::Zipfian { theta: 0.9 })
    .service(ServiceSpec::Memcached { n_items: 4096, value_lines: 2, work_count: 50 })
    .platform(platform)
    .queue_capacity(48)
    .dispatch_overhead(Span::from_ns(75))
    .slo(SloSpec::none().p99(Span::from_us(40)).p999(Span::from_us(90)).max_shed_fraction(0.25))
    .admission(AdmissionControl::DeadlineAware {
        target: Span::from_us(3),
        interval: Span::from_us(7),
    })
    .retry(RetryPolicy::budgeted(Span::from_us(50), 3, 0.5, Span::from_us(10)))
    .faults(FaultPlan::none().with_fiber_crashes(0.002, Span::from_us(15)))
    .net(
        NetConfig::on()
            .nic(NicModelKind::nanopu())
            .rx_queues(8)
            .flows(32)
            .packet_bytes(512, 1024)
            .link_gbps(40.0)
            .proto(Span::from_ns(220))
            .steer(Span::from_ns(55))
            .jitter(Span::from_ns(200)),
    )
    .tiers(TierSpec::fanout(4).front_overhead(Span::from_ns(210)).reply_overhead(Span::from_ns(95)))
    .matrix(matrix)
}

#[test]
fn maximal_spec_round_trips_through_toml() {
    let spec = maximal_spec();
    let text = spec.to_toml();
    let reparsed = ScenarioSpec::parse(&text)
        .unwrap_or_else(|e| panic!("serialized spec must re-parse: {e}\n---\n{text}"));
    assert_eq!(spec, reparsed, "parse(to_toml(spec)) must reproduce the spec\n---\n{text}");
}

#[test]
fn round_trip_preserves_the_compiled_fingerprint() {
    let spec = maximal_spec();
    let direct = spec.clone().compile().expect("maximal spec compiles");
    let via_toml = Scenario::from_toml(&spec.to_toml()).expect("round-trip compiles");
    assert_eq!(direct.fingerprint(), via_toml.fingerprint());
    // And serialization is a fixed point: one trip through TOML is
    // canonical, so a second trip is byte-identical.
    assert_eq!(spec.to_toml(), via_toml.spec().to_toml());
}

#[test]
fn default_spec_round_trips_and_matches_load_spec_defaults() {
    let spec = ScenarioSpec::new("calm", ArrivalProcess::Poisson { rate_rps: 1.0 });
    let text = spec.to_toml();
    let reparsed = ScenarioSpec::parse(&text).expect("defaults re-parse");
    assert_eq!(spec, reparsed);
    let sc = reparsed.compile().expect("defaults compile");
    let reference = LoadSpec::new(ArrivalProcess::Poisson { rate_rps: 1.0 });
    assert_eq!(format!("{:?}", sc.load()), format!("{reference:?}"));
}

#[test]
fn every_arrival_shape_round_trips() {
    let shapes = [
        ArrivalProcess::Poisson { rate_rps: 2.5e6 },
        ArrivalProcess::OnOff { rate_rps: 1.0e6, on: Span::from_us(30), off: Span::from_us(10) },
        ArrivalProcess::Ramp { start_rps: 1.0e5, end_rps: 3.0e6, over: Span::from_us(400) },
        ArrivalProcess::Diurnal { base_rps: 1.0e6, amplitude: 0.5, period: Span::from_us(200) },
        ArrivalProcess::FlashCrowd {
            base_rps: 1.0e6,
            spike_rps: 5.0e6,
            at: Span::from_us(80),
            rise: Span::from_us(5),
            hold: Span::from_us(25),
            fall: Span::from_us(15),
        },
        ArrivalProcess::Bursts {
            base_rps: 8.0e5,
            burst_rps: 4.0e6,
            period: Span::from_us(60),
            burst_len: Span::from_us(12),
        },
        ArrivalProcess::ClosedLoop { users: 12, think: Span::from_us(2) },
    ];
    for arrival in shapes {
        let spec = ScenarioSpec::new("shape", arrival).requests(64);
        let reparsed = ScenarioSpec::parse(&spec.to_toml())
            .unwrap_or_else(|e| panic!("{arrival:?} must re-parse: {e}"));
        assert_eq!(spec, reparsed, "{arrival:?}");
    }
}

#[test]
fn every_key_popularity_and_service_round_trips() {
    let keys = [
        KeyPopularity::Sequential,
        KeyPopularity::Zipfian { theta: 0.75 },
        KeyPopularity::HotSet { hot_fraction: 0.05, hot_weight: 0.95 },
    ];
    let services = [
        ServiceSpec::Echo { lines: 512 },
        ServiceSpec::Memcached { n_items: 1024, value_lines: 8, work_count: 25 },
        ServiceSpec::Bloom { n_keys: 2048, k: 6, work_count: 75 },
    ];
    for k in keys {
        for s in services {
            let spec = ScenarioSpec::new("combo", ArrivalProcess::Poisson { rate_rps: 1.0 })
                .keys(k)
                .service(s);
            let reparsed = ScenarioSpec::parse(&spec.to_toml()).expect("re-parses");
            assert_eq!(spec, reparsed, "{k:?} × {s:?}");
        }
    }
}

#[test]
fn expect_section_round_trips_without_a_matrix() {
    // `[expect]` and `[matrix]` are mutually exclusive at compile time, so
    // the expectation-bearing spec gets its own (matrix-free) round-trip.
    let spec = ScenarioSpec::new("claimed", ArrivalProcess::Poisson { rate_rps: 2.0e6 })
        .requests(64)
        .expect(ExpectSpec {
            verdict: Some("graceful".into()),
            slo_pass: Some(true),
            knee_at_least: Some(1.5e6),
            critical_tier: Some("rpc.shard3".into()),
            critical_share_at_least: Some(0.4),
        });
    let text = spec.to_toml();
    let reparsed = ScenarioSpec::parse(&text)
        .unwrap_or_else(|e| panic!("expect spec must re-parse: {e}\n---\n{text}"));
    assert_eq!(spec, reparsed, "\n---\n{text}");
    // Suffixed rate strings parse to the same spec as the float form.
    let sugared = text.replace("knee_at_least = 1500000.0", "knee_at_least = \"1.5M\"");
    assert_ne!(text, sugared, "replacement must have applied");
    assert_eq!(spec, ScenarioSpec::parse(&sugared).expect("suffixed knee parses"));
}

#[test]
fn disabled_net_round_trip_keeps_the_nic_kind() {
    // `model = "off"` still serializes the NIC's cost knobs, so flipping a
    // scenario back on recovers the same design point.
    let spec = ScenarioSpec::new("latent", ArrivalProcess::Poisson { rate_rps: 1.0e6 })
        .net(NetConfig::on().nic(NicModelKind::nanopu()));
    let off = ScenarioSpec {
        net: NetConfig { enabled: false, ..spec.net },
        ..spec
    };
    let text = off.to_toml();
    assert!(text.contains("model = \"off\""), "{text}");
    let reparsed = ScenarioSpec::parse(&text).expect("disabled net re-parses");
    assert_eq!(off, reparsed, "\n---\n{text}");
}

#[test]
fn expect_with_matrix_is_rejected_at_compile() {
    let spec = maximal_spec().expect(ExpectSpec {
        verdict: Some("graceful".into()),
        ..ExpectSpec::default()
    });
    let e = spec.compile().unwrap_err();
    assert_eq!(e.section, "expect", "{e}");
}

#[test]
fn net_with_closed_loop_arrivals_is_rejected_at_compile() {
    let spec =
        ScenarioSpec::new("closed", ArrivalProcess::ClosedLoop { users: 4, think: Span::from_us(2) })
            .net(NetConfig::on());
    let e = spec.compile().unwrap_err();
    assert_eq!(e.section, "net", "{e}");
}

#[test]
fn parse_errors_carry_section_field_and_line() {
    let e = ScenarioSpec::parse("name = \"x\"\n[traffic]\narrival = \"warp\"\n").unwrap_err();
    assert_eq!(e.section, "traffic");
    assert_eq!(e.field.as_deref(), Some("arrival"));
    assert_eq!(e.line, Some(3));

    let e = ScenarioSpec::parse(
        "name = \"x\"\n[keys]\npopularity = \"zipfian\"\ntheta = 0.9\nbogus = 1\n",
    )
    .unwrap_err();
    assert_eq!(e.field.as_deref(), Some("bogus"));
    assert_eq!(e.line, Some(5));

    let e = ScenarioSpec::parse("nope = 1\n").unwrap_err();
    assert!(e.message.contains("name"), "{e}");
}

#[test]
fn unknown_keys_in_every_section_are_rejected() {
    for section in
        ["traffic", "keys", "service", "platform", "queue", "slo", "admission", "retry", "faults", "net", "tiers", "expect", "matrix"]
    {
        let text = format!("name = \"x\"\n[{section}]\nmystery_knob = 1\n");
        let Err(e) = ScenarioSpec::parse(&text) else {
            panic!("[{section}] must reject unknown keys");
        };
        assert_eq!(e.section, section, "{e}");
        assert_eq!(e.field.as_deref(), Some("mystery_knob"), "{e}");
    }
}
