//! The sweep engine's central guarantee: parallel execution is
//! *observationally invisible*. The same cell set run with `--jobs 1` and
//! `--jobs N` must produce byte-identical JSON/CSV artifacts and identical
//! per-cell trace fingerprints, and the figure pipeline must reproduce the
//! serial `Runner::immediate` output exactly. A panicking cell must poison
//! only its own row.

use kus_bench::load::{run_load_sweep, LoadSweepSpec};
use kus_bench::sweep::{run_cells, run_figures, run_sweep, SweepCell, SweepOptions, SweepSpec};
use kus_core::prelude::*;
use kus_load::{service_factory, ArrivalProcess, EchoService, LoadSpec};
use kus_workloads::figures::{self, Quality};
use kus_workloads::{Microbench, MicrobenchConfig};

fn tiny_exp(traced: bool) -> Experiment {
    let mc = MicrobenchConfig { work_count: 80, mlp: 1, iters_per_fiber: 10, writes_per_iter: 0 };
    let mut cfg = PlatformConfig::paper_default().without_replay_device();
    if traced {
        cfg = cfg.traced();
    }
    Experiment::new("tiny", cfg, move || Microbench::new(mc)).unwrap()
}

fn spec(traced: bool) -> SweepSpec {
    SweepSpec::new(tiny_exp(traced))
        .mechanisms(&[Mechanism::OnDemand, Mechanism::Prefetch, Mechanism::SoftwareQueue])
        .fibers_per_core(&[1, 4])
        .seeds(&[1, 2])
}

/// Golden: `--jobs 1` and `--jobs 4` emit byte-identical artifacts, and
/// every cell's deterministic trace fingerprint matches between the runs.
#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let serial = run_sweep(&spec(true), &SweepOptions::jobs(1));
    let parallel = run_sweep(&spec(true), &SweepOptions::jobs(4));
    assert_eq!(serial.cells.len(), 12);
    assert_eq!(serial.to_json(), parallel.to_json());
    assert_eq!(serial.to_csv(), parallel.to_csv());
    for (s, p) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(s.index, p.index);
        assert_eq!(s.label, p.label);
        let (sr, pr) = (s.outcome.as_ref().unwrap(), p.outcome.as_ref().unwrap());
        let (st, pt) = (sr.trace.as_ref().unwrap(), pr.trace.as_ref().unwrap());
        assert_eq!(st.hash, pt.hash, "trace fingerprint diverged for {}", s.label);
        assert_eq!(st.count, pt.count);
    }
    // The artifacts really carry the fingerprints (not just nulls).
    assert!(serial.to_json().contains("\"trace_hash\":\""));
}

/// The figure pipeline (collect → pool → cached re-assembly) reproduces the
/// serial `Runner::immediate` figures exactly, at any job count.
#[test]
fn figure_pipeline_matches_serial_runner() {
    let q = Quality { iters: 40, ..Quality::fast() };
    let entries = figures::registry(false);
    let entries: Vec<_> =
        entries.into_iter().filter(|e| e.id == "fig3" || e.id == "fig8").collect();
    let (parallel, results) = run_figures(&entries, q, &SweepOptions::jobs(4));
    assert_eq!(results.errors().count(), 0);
    let serial = [("fig3", vec![figures::fig3(q)]), ("fig8", vec![figures::fig8(q)])];
    for ((pid, pfigs), (sid, sfigs)) in parallel.iter().zip(&serial) {
        assert_eq!(pid, sid);
        assert_eq!(pfigs.len(), sfigs.len());
        for (p, s) in pfigs.iter().zip(sfigs) {
            assert_eq!(p.id, s.id);
            for (ps, ss) in p.series.iter().zip(&s.series) {
                assert_eq!(ps.label, ss.label);
                // Bitwise float equality: same cells, same math, same order.
                for (pp, sp) in ps.points.iter().zip(&ss.points) {
                    assert_eq!(pp.x.to_bits(), sp.x.to_bits(), "{}/{}", p.id, ps.label);
                    assert_eq!(pp.y.to_bits(), sp.y.to_bits(), "{}/{}", p.id, ps.label);
                }
            }
        }
    }
}

/// The load sweep inherits the engine's guarantee wholesale: `--jobs 1`
/// and `--jobs 4` over the mechanism × rate matrix emit byte-identical
/// JSON and CSV, knees included.
#[test]
fn load_sweep_is_byte_identical_across_jobs() {
    let spec = || {
        LoadSweepSpec::new(
            "echo",
            service_factory(|| EchoService::new(256)),
            LoadSpec::new(ArrivalProcess::Poisson { rate_rps: 1.0 }).requests(80),
            PlatformConfig::paper_default().without_replay_device().cores(2).fibers_per_core(4),
        )
        .mechanisms(&[Mechanism::OnDemand, Mechanism::SoftwareQueue])
        .rates(&[500_000, 4_000_000])
    };
    let serial = run_load_sweep(&spec(), &SweepOptions::jobs(1));
    let parallel = run_load_sweep(&spec(), &SweepOptions::jobs(4));
    assert_eq!(serial.cells.len(), 4);
    assert_eq!(serial.errors().count(), 0);
    assert_eq!(serial.to_json(), parallel.to_json());
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.render_table(), parallel.render_table());
}

/// A workload that panics mid-build.
struct Poisoned;

impl Workload for Poisoned {
    fn name(&self) -> &'static str {
        "poisoned"
    }

    fn build(&mut self, _data: &mut Dataset) {
        panic!("injected test panic");
    }

    fn spawn(&self, _core: usize, _fiber: usize, _total: usize, _ctx: MemCtx) -> FiberFuture {
        unreachable!("build panics first")
    }
}

/// A panicking cell becomes an error row; its neighbours still complete,
/// in order, on every job count.
#[test]
fn panicking_cell_is_isolated() {
    for jobs in [1, 3] {
        let poisoned = Experiment::new(
            "poisoned",
            PlatformConfig::paper_default().without_replay_device(),
            || Poisoned,
        )
        .unwrap();
        let cells = vec![
            SweepCell::from_experiment(tiny_exp(false)),
            SweepCell::from_experiment(poisoned),
            SweepCell::from_experiment(tiny_exp(false)),
        ];
        let results = run_cells(cells, &SweepOptions::jobs(jobs));
        assert_eq!(results.cells.len(), 3);
        assert!(results.cells[0].outcome.is_ok());
        assert!(results.cells[2].outcome.is_ok());
        let err = results.cells[1].outcome.as_ref().unwrap_err();
        assert!(err.contains("injected test panic"), "jobs={jobs}: {err}");
        assert_eq!(results.reports().count(), 2);
        // The error row surfaces in both artifacts.
        assert!(results.to_json().contains("\"ok\":false"));
        assert!(results.to_csv().contains("injected test panic"));
    }
}

/// Identical runs of the two equal cells in the matrix produce identical
/// reports — the engine never lets one cell's state leak into another.
#[test]
fn repeated_cells_are_independent() {
    let cells = vec![
        SweepCell::from_experiment(tiny_exp(false)),
        SweepCell::from_experiment(tiny_exp(false)),
    ];
    let results = run_cells(cells, &SweepOptions::jobs(2));
    let reports: Vec<_> = results.reports().map(|(_, r)| r).collect();
    assert_eq!(reports.len(), 2);
    assert_eq!(reports[0].elapsed, reports[1].elapsed);
    assert_eq!(reports[0].work_insts, reports[1].work_insts);
    assert_eq!(reports[0].accesses, reports[1].accesses);
}
