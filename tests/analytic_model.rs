//! Validates the closed-form analytic model (§V-B's back-of-the-envelope
//! arithmetic) against the full simulation: in the regimes where the
//! formulas apply they must predict the simulator within tolerance, which
//! guards both against simulator regressions and against the model drifting
//! from the implementation it summarizes.

use kus_core::analytic::{chip_queue_rule, per_core_queue_rule, UbenchModel};
use kus_core::prelude::*;
use kus_workloads::{Microbench, MicrobenchConfig};

fn ubench(iters: u64, mlp: usize) -> Microbench {
    Microbench::new(MicrobenchConfig {
        work_count: 100,
        mlp,
        iters_per_fiber: iters,
        writes_per_iter: 0,
    })
}

fn within(measured: f64, predicted: f64, tol: f64) -> bool {
    (measured - predicted).abs() <= predicted * tol
}

#[test]
fn baseline_rate_matches_prediction() {
    let cfg = PlatformConfig::paper_default().without_replay_device();
    let model = UbenchModel::from_config(&cfg, 100, 1);
    let r = Platform::try_new(cfg).expect("valid config").run_baseline(&mut ubench(800, 1));
    let predicted = model.baseline_access_rate();
    assert!(
        within(r.access_rate(), predicted, 0.15),
        "baseline rate {:.2e} vs predicted {predicted:.2e}",
        r.access_rate()
    );
}

#[test]
fn prefetch_normalized_tracks_model_below_the_wall() {
    // In the thread-limited regime (no LFB pressure, no stall convoys) the
    // occupancy formula is accurate.
    for fibers in [2usize, 4, 8] {
        let cfg = PlatformConfig::paper_default()
            .without_replay_device()
            .fibers_per_core(fibers);
        let model = UbenchModel::from_config(&cfg, 100, 1);
        let base = Platform::try_new(cfg.clone()).expect("valid config").run_baseline(&mut ubench(800, 1));
        let dev = Platform::try_new(cfg).expect("valid config").run(&mut ubench(300, 1));
        let measured = dev.normalized_to(&base);
        let predicted = model.prefetch_normalized();
        assert!(
            within(measured, predicted, 0.20),
            "fibers={fibers}: measured {measured:.3} vs predicted {predicted:.3}"
        );
    }
}

#[test]
fn prefetch_plateau_is_the_lfb_bound() {
    // At 4 us and ample threads, throughput should sit at
    // lfbs / latency accesses per second (within stall-convoy noise).
    let cfg = PlatformConfig::paper_default()
        .without_replay_device()
        .device_latency(Span::from_us(4))
        .fibers_per_core(16);
    let model = UbenchModel::from_config(&cfg, 100, 1);
    assert_eq!(model.prefetch_in_flight(), 10);
    let dev = Platform::try_new(cfg).expect("valid config").run(&mut ubench(200, 1));
    let predicted_rate = 10.0 / 4e-6;
    assert!(
        within(dev.access_rate(), predicted_rate, 0.30),
        "rate {:.2e} vs {predicted_rate:.2e}",
        dev.access_rate()
    );
}

#[test]
fn swq_peak_tracks_cost_model() {
    let cfg = PlatformConfig::paper_default()
        .without_replay_device()
        .mechanism(Mechanism::SoftwareQueue)
        .fibers_per_core(24);
    let model = UbenchModel::from_config(&cfg, 100, 1);
    let base = Platform::try_new(cfg.clone()).expect("valid config").run_baseline(&mut ubench(800, 1));
    let dev = Platform::try_new(cfg).expect("valid config").run(&mut ubench(250, 1));
    let measured = dev.normalized_to(&base);
    let predicted = model.swq_peak_normalized();
    assert!(
        within(measured, predicted, 0.25),
        "measured {measured:.3} vs predicted {predicted:.3}"
    );
}

#[test]
fn provisioning_rule_matches_figure_scale() {
    // The rule says a 4 us device needs ~80 per-core entries; giving it
    // exactly the rule (and the chip-level companion) must raise the
    // plateau to >3x the stock value.
    let lat = Span::from_us(4);
    let per_core = per_core_queue_rule(lat) as usize;
    let chip = chip_queue_rule(lat, 1) as usize;
    assert_eq!(per_core, 80);
    let stock_cfg = PlatformConfig::paper_default()
        .without_replay_device()
        .device_latency(lat)
        .fibers_per_core(16);
    let ruled_cfg = stock_cfg
        .clone()
        .lfbs(per_core)
        .device_path_credits(chip.max(per_core))
        .fibers_per_core(per_core + per_core / 5);
    let base = Platform::try_new(stock_cfg.clone()).expect("valid config").run_baseline(&mut ubench(800, 1));
    let stock = Platform::try_new(stock_cfg).expect("valid config").run(&mut ubench(150, 1)).normalized_to(&base);
    let ruled = Platform::try_new(ruled_cfg).expect("valid config").run(&mut ubench(150, 1)).normalized_to(&base);
    assert!(ruled > stock * 3.0, "rule-sized queues: {stock:.3} -> {ruled:.3}");
    assert!(ruled > 0.75, "4us device near DRAM with rule-sized queues: {ruled:.3}");
}

#[test]
fn fill_latency_histogram_reflects_configuration() {
    // Uncongested: the measured fill-latency distribution sits tight on the
    // configured device latency.
    let cfg = PlatformConfig::paper_default().without_replay_device().fibers_per_core(8);
    let r = Platform::try_new(cfg).expect("valid config").run(&mut ubench(300, 1));
    let h = r.fill_latency.expect("device run records fill latencies");
    assert_eq!(h.count(), r.accesses);
    let mean = h.mean().as_ns_f64();
    assert!((990.0..1100.0).contains(&mean), "mean fill latency {mean}ns");
    assert!(h.max().as_ns() < 1500, "uncongested tail {:?}", h.max());
}

#[test]
fn fill_latency_tail_grows_under_congestion() {
    // With the structural queues lifted, enough parallelism saturates the
    // PCIe link itself and queueing delay appears in the measured tail.
    // (The fill-latency histogram measures from issue onto the interconnect,
    // so back-pressure *behind* the uncore credits does not count — only
    // real wire congestion does.)
    let cfg = PlatformConfig::paper_default()
        .without_replay_device()
        .lfbs(64)
        .device_path_credits(512)
        .cores(8)
        .fibers_per_core(64);
    let r = Platform::try_new(cfg).expect("valid config").run(&mut ubench(100, 1));
    let h = r.fill_latency.expect("histogram");
    assert!(
        h.quantile(0.99) > kus_sim::Span::from_ns(1500),
        "congested p99 {:?} (mean {:?})",
        h.quantile(0.99),
        h.mean()
    );
}
