//! The committed `scenarios/` corpus is a tested artifact, not sample
//! code. Three guarantees:
//!
//! 1. **The corpus compiles** — every `*.toml` parses, validates, and
//!    round-trips through the canonical serializer with its fingerprint
//!    intact. A schema change that orphans a committed scenario fails
//!    here, with the filename attached.
//! 2. **The matrix is byte-deterministic** — `figures scenario-matrix`
//!    emits identical JSON/CSV at `--jobs 1` and `--jobs 4`.
//! 3. **Scenarios are not a parallel config system** — the
//!    `overload-defaults` scenario, which encodes every default
//!    `figures overload` uses with no flags, reproduces the committed
//!    `artifacts/overload/` emitters byte-for-byte through the scenario
//!    compile path. A world written in TOML is *exactly* the world the
//!    builders construct.

use std::path::Path;

use kus_bench::overload::{run_overload_sweep, OverloadSweepSpec};
use kus_bench::scenario::{load_scenario_dir, run_scenario_matrix, ScenarioMatrixSpec};
use kus_bench::sweep::SweepOptions;
use kus_scenario::{Scenario, ScenarioSpec};

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

/// Every committed scenario parses, compiles, and survives a
/// serialize → reparse → recompile trip with an unchanged fingerprint.
#[test]
fn committed_corpus_compiles_and_round_trips() {
    let scenarios = load_scenario_dir(&corpus_dir()).expect("corpus loads");
    assert!(
        scenarios.len() >= 12,
        "scenario corpus shrank to {} files (floor: 12)",
        scenarios.len()
    );
    for sc in &scenarios {
        let text = sc.spec().to_toml();
        let back = ScenarioSpec::parse(&text)
            .unwrap_or_else(|e| panic!("{}: canonical TOML does not reparse: {e}", sc.name()));
        assert_eq!(&back, sc.spec(), "{}: round trip changed the spec", sc.name());
        let recompiled = Scenario::compile(back)
            .unwrap_or_else(|e| panic!("{}: canonical TOML does not recompile: {e}", sc.name()));
        assert_eq!(
            recompiled.fingerprint(),
            sc.fingerprint(),
            "{}: round trip changed the fingerprint",
            sc.name()
        );
    }
}

/// The full corpus × mechanism matrix emits byte-identical artifacts at
/// any parallelism.
#[test]
fn scenario_matrix_is_byte_identical_across_jobs() {
    let scenarios = load_scenario_dir(&corpus_dir()).expect("corpus loads");
    let spec = ScenarioMatrixSpec::new(scenarios);
    let serial = run_scenario_matrix(&spec, &SweepOptions::jobs(1));
    let parallel = run_scenario_matrix(&spec, &SweepOptions::jobs(4));
    assert!(
        serial.errors().next().is_none(),
        "corpus has failing cells: {:?}",
        serial.errors().map(|(c, e)| format!("{}: {e}", c.label)).collect::<Vec<_>>()
    );
    assert_eq!(serial.to_json(), parallel.to_json(), "matrix JSON differs across --jobs");
    assert_eq!(serial.to_csv(), parallel.to_csv(), "matrix CSV differs across --jobs");
    assert_eq!(serial.render_table(), parallel.render_table());
}

/// `scenarios/overload-defaults.toml` → compile → the overload sweep
/// reproduces `artifacts/overload/{overload.json,overload.csv}`
/// byte-for-byte. This is the "one compiled type" guarantee end to end:
/// the TOML front-end and the builder front-end meet at identical bytes.
#[test]
fn overload_defaults_scenario_reproduces_committed_artifacts() {
    let text = std::fs::read_to_string(corpus_dir().join("overload-defaults.toml"))
        .expect("overload-defaults.toml is committed");
    let sc = Scenario::from_toml(&text).expect("overload-defaults compiles");
    let m = sc.matrix().expect("overload-defaults carries a [matrix]").clone();
    let sweep = OverloadSweepSpec::new(sc.service_name(), sc.service(), sc.load(), sc.cfg().clone())
        .policies(&m.policies)
        .plans(&m.plans)
        .rates(&m.rates)
        .with_retry_pair(m.retry_pair);
    let results = run_overload_sweep(&sweep, &SweepOptions::jobs(2));
    assert!(results.errors().is_empty(), "{:?}", results.errors());

    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../artifacts/overload");
    let committed = |name: &str| {
        std::fs::read_to_string(dir.join(name))
            .unwrap_or_else(|e| panic!("missing committed artifact {name}: {e}"))
    };
    assert_eq!(
        results.to_json(),
        committed("overload.json"),
        "the overload-defaults scenario drifted from `figures overload`'s flagless defaults"
    );
    assert_eq!(results.to_csv(), committed("overload.csv"));
}
