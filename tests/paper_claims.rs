//! Integration tests asserting the paper's headline quantitative claims —
//! each test pins the *shape* of one finding (who wins, where the walls
//! are, roughly by what factor), not absolute testbed numbers.

use kus_core::prelude::*;
use kus_workloads::figures::{fig10, fig2, fig3, fig6, fig8, Quality};
use kus_workloads::{Microbench, MicrobenchConfig};

fn q() -> Quality {
    Quality { iters: 200, ..Quality::fast() }
}

fn ubench(iters: u64) -> Microbench {
    Microbench::new(MicrobenchConfig { work_count: 100, mlp: 1, iters_per_fiber: iters, writes_per_iter: 0 })
}

/// §V-A / Fig. 2: on-demand accesses are abysmal at reasonable work counts
/// and only partially abated at ~5000 instructions per access.
#[test]
fn on_demand_is_abysmal_then_partially_abates() {
    let f = fig2(q());
    let one_us = f.series("1us");
    assert!(one_us.at(100.0) < 0.2, "W=100 should be abysmal: {}", one_us.at(100.0));
    let at5000 = one_us.at(5000.0);
    assert!(
        (0.4..0.9).contains(&at5000),
        "W=5000 should be partially abated: {at5000}"
    );
    // Slower devices are uniformly worse.
    let four_us = f.series("4us");
    for w in [100.0, 1000.0, 5000.0] {
        assert!(four_us.at(w) < one_us.at(w));
    }
}

/// §V-B / Fig. 3: prefetch+switch scales near-linearly with threads and
/// hits the 10-LFB wall; at 10 threads and 1 µs it approaches the DRAM
/// baseline; longer latencies have proportionally shallower slopes.
#[test]
fn prefetch_scales_to_the_lfb_wall() {
    let f = fig3(q());
    let one_us = f.series("1us");
    // Near-linear rise 1 -> 10.
    let r1 = one_us.at(1.0);
    let r10 = one_us.at(10.0);
    assert!(r10 / r1 > 6.0, "should scale ~8x from 1 to 10 threads: {r1} -> {r10}");
    assert!(r10 > 0.8, "10 threads at 1us should approach DRAM: {r10}");
    // No improvement beyond 10 threads (the LFB wall).
    for t in [12.0, 14.0, 16.0] {
        assert!(one_us.at(t) <= r10 * 1.1, "beyond the wall at t={t}");
    }
    // Latency scaling: the plateau is ~inverse in latency.
    let r10_2us = f.series("2us").at(10.0);
    let r10_4us = f.series("4us").at(10.0);
    assert!((0.35..0.75).contains(&(r10_2us / r10)), "2us/1us ratio {}", r10_2us / r10);
    assert!((0.15..0.45).contains(&(r10_4us / r10)), "4us/1us ratio {}", r10_4us / r10);
}

/// §V-B / Fig. 6: MLP consumes LFBs — the 2-read and 4-read variants stop
/// scaling at roughly 5 and 3 threads and plateau well below the 1-read
/// curve.
#[test]
fn mlp_consumes_lfbs() {
    let f = fig6(q());
    let r1 = f.series("1-read");
    let r2 = f.series("2-read");
    let r4 = f.series("4-read");
    // Peaks are ordered 1-read > 2-read > 4-read.
    assert!(r1.peak() > r2.peak() && r2.peak() > r4.peak(), "{} {} {}", r1.peak(), r2.peak(), r4.peak());
    // 4-read stops gaining by ~3-4 threads: everything past 4 threads is
    // within noise of the value at 4.
    let at4 = r4.at(4.0);
    for t in [6.0, 8.0, 10.0, 16.0] {
        assert!(r4.at(t) < at4 * 1.5, "4-read should not keep scaling at t={t}");
    }
    // 2-read gains clearly from 2 -> 4 threads but not from 4 -> 16.
    assert!(r2.at(4.0) > r2.at(2.0) * 1.5);
    assert!(r2.at(16.0) < r2.at(4.0) * 1.4);
}

/// §V-C / Fig. 7: software queues keep scaling past the LFB wall but peak
/// at ≈50 % of the DRAM baseline on one core.
#[test]
fn swq_peaks_at_half_of_dram() {
    let base_cfg = PlatformConfig::paper_default().without_replay_device();
    let base = Platform::try_new(base_cfg.clone()).expect("valid config").run_baseline(&mut ubench(800));
    let mut peak: f64 = 0.0;
    for t in [8usize, 16, 24, 32] {
        let cfg = base_cfg.clone().mechanism(Mechanism::SoftwareQueue).fibers_per_core(t);
        let r = Platform::try_new(cfg).expect("valid config").run(&mut ubench(200));
        peak = peak.max(r.normalized_to(&base));
    }
    assert!((0.40..0.62).contains(&peak), "swq single-core peak {peak}");
}

/// §V-B / Fig. 5: multicore prefetch is capped by the 14-entry chip-level
/// queue: going from 2 to 8 cores barely helps.
#[test]
fn multicore_prefetch_hits_the_14_entry_wall() {
    let base_cfg = PlatformConfig::paper_default().without_replay_device();
    let base = Platform::try_new(base_cfg.clone()).expect("valid config").run_baseline(&mut ubench(800));
    let run = |cores: usize| {
        let cfg = base_cfg.clone().cores(cores).fibers_per_core(8);
        let r = Platform::try_new(cfg).expect("valid config").run(&mut ubench(200));
        (r.normalized_to(&base), r.device_path_max)
    };
    let (n2, _) = run(2);
    let (n8, occ8) = run(8);
    assert_eq!(occ8, 14, "the shared queue must saturate");
    assert!(n8 < n2 * 1.8, "8 cores should gain little over 2: {n2} -> {n8}");
    // And the wall is the queue, not the workload: lifting it scales.
    let cfg = base_cfg.clone().cores(8).fibers_per_core(8).device_path_credits(256);
    let lifted = Platform::try_new(cfg).expect("valid config").run(&mut ubench(200)).normalized_to(&base);
    assert!(lifted > n8 * 2.5, "lifting the queue should scale: {n8} -> {lifted}");
}

/// §V-C / Fig. 8: multicore software queues scale roughly linearly until
/// the PCIe request-rate bottleneck, where only ≈half the wire bandwidth
/// moves useful data.
#[test]
fn swq_multicore_saturates_pcie_at_half_useful() {
    let f = fig8(q());
    let one_us = f.series("1us");
    let n1 = one_us.at(1.0);
    let n4 = one_us.at(4.0);
    assert!(n4 > n1 * 3.0, "near-linear to 4 cores: {n1} -> {n4}");
    let n8 = one_us.at(8.0);
    let n12 = one_us.at(12.0);
    assert!(n12 < n8 * 1.15, "capped after ~8 cores: {n8} -> {n12}");

    // Useful-vs-wire accounting at the saturation point.
    let cfg = PlatformConfig::paper_default()
        .without_replay_device()
        .mechanism(Mechanism::SoftwareQueue)
        .cores(8)
        .fibers_per_core(24);
    let r = Platform::try_new(cfg).expect("valid config").run(&mut ubench(150));
    let link = r.link.expect("device run has a link");
    let useful = link.up_payload_bw(r.elapsed);
    let wire = link.up_wire_bw(r.elapsed);
    assert!(wire > 3.5e9, "device->host direction should be near 4 GB/s: {wire}");
    let frac = useful / wire;
    assert!((0.45..0.70).contains(&frac), "useful fraction {frac}");
}

/// §V-D / Fig. 10: single-core application bands — prefetch reaches
/// 35–65 % of the DRAM baseline, software queues 20–50 %.
#[test]
fn application_single_core_bands() {
    let figs = fig10(Quality { iters: 120, ..Quality::fast() });
    let panel_a = figs.iter().find(|f| f.id == "fig10a").unwrap();
    let panel_b = figs.iter().find(|f| f.id == "fig10b").unwrap();
    for app in ["bfs", "bloom", "memcached"] {
        let pf = panel_a.series(app).peak();
        assert!(
            (0.25..0.85).contains(&pf),
            "prefetch 1-core peak for {app} out of band: {pf}"
        );
        let swq = panel_b.series(app).peak();
        assert!(
            (0.15..0.62).contains(&swq),
            "swq 1-core peak for {app} out of band: {swq}"
        );
        assert!(pf > swq * 0.9, "prefetch should generally beat swq on one core ({app})");
    }
}

/// §V-D / Fig. 10(c,d): on eight cores the software queues reach 1.2–2.0×
/// the single-core DRAM baseline, while prefetch stays pinned by the
/// 14-entry queue.
#[test]
fn application_multicore_bands() {
    let figs = fig10(Quality { iters: 100, ..Quality::fast() });
    let panel_c = figs.iter().find(|f| f.id == "fig10c").unwrap();
    let panel_d = figs.iter().find(|f| f.id == "fig10d").unwrap();
    for app in ["bloom", "memcached"] {
        let swq = panel_d.series(app).peak();
        assert!(
            (1.0..3.2).contains(&swq),
            "swq 8-core peak for {app} should exceed the 1-core baseline: {swq}"
        );
        let pf = panel_c.series(app).peak();
        assert!(
            pf < swq,
            "8-core prefetch ({pf}) should trail 8-core swq ({swq}) for {app}"
        );
    }
}

/// §V-B implications: the paper's queue-provisioning rule — with LFBs and
/// the chip queue sized at ~20 × latency-in-µs, even a 4 µs device
/// approaches the DRAM baseline.
#[test]
fn queue_sizing_rule_fixes_the_4us_device() {
    let base_cfg = PlatformConfig::paper_default()
        .without_replay_device()
        .device_latency(Span::from_us(4));
    let base = Platform::try_new(base_cfg.clone()).expect("valid config").run_baseline(&mut ubench(800));
    // Stock hardware: stuck far below DRAM.
    let stock = Platform::try_new(base_cfg.clone().fibers_per_core(10)).expect("valid config")
        .run(&mut ubench(150))
        .normalized_to(&base);
    assert!(stock < 0.45, "stock 4us should be far from DRAM: {stock}");
    // Provisioned per the rule: 20 * 4 = 80 entries/core.
    let fixed = Platform::try_new(
        base_cfg.clone().lfbs(80).device_path_credits(512).fibers_per_core(96),
    ).expect("valid config")
    .run(&mut ubench(150))
    .normalized_to(&base);
    assert!(fixed > 0.75, "provisioned 4us should approach DRAM: {fixed}");
}
