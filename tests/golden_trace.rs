//! Golden-trace snapshots: the canonical scenarios' event streams are
//! pinned — hash, event count, and the first events rendered line-by-line.
//!
//! A bare hash mismatch is useless for debugging, so each golden also
//! stores a prefix of the decoded stream; on failure the test reports the
//! first diverging event with context instead of just "hash changed".
//!
//! Regenerate after an intentional instrumentation change with:
//!
//! ```sh
//! KUS_BLESS=1 cargo test -q --test golden_trace
//! ```
//!
//! and review the golden diff like any other code change.

use std::fmt::Write as _;
use std::path::PathBuf;

use kus_workloads::trace_scenarios::{run_trace_scenario, trace_scenarios};

/// Events snapshotted per scenario (the full stream is pinned by the hash).
const PREFIX: usize = 40;

/// Seed the goldens are recorded at (the `figures --trace` default).
const SEED: u64 = 0xC0FFEE;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../tests/goldens/trace_{name}.txt"))
}

fn snapshot(name: &str) -> String {
    let r = run_trace_scenario(name, SEED).expect("canonical scenario");
    let t = r.trace.expect("traced run");
    let mut s = String::new();
    writeln!(s, "hash {:016x}", t.hash).unwrap();
    writeln!(s, "count {}", t.count).unwrap();
    for e in t.events.iter().take(PREFIX) {
        writeln!(s, "{}", e.render()).unwrap();
    }
    s
}

/// Lines up to the first divergence, the divergence itself, and a little
/// context — a readable event diff rather than a bare hash mismatch.
fn first_divergence(expected: &str, actual: &str) -> String {
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let common = exp.iter().zip(&act).take_while(|(a, b)| a == b).count();
    let mut out = String::new();
    writeln!(out, "first divergence at line {} (1-based):", common + 1).unwrap();
    let from = common.saturating_sub(3);
    for line in &exp[from..common.min(exp.len())] {
        writeln!(out, "    {line}").unwrap();
    }
    match (exp.get(common), act.get(common)) {
        (Some(e), Some(a)) => {
            writeln!(out, "  - {e}").unwrap();
            writeln!(out, "  + {a}").unwrap();
        }
        (Some(e), None) => writeln!(out, "  - {e}\n  + <stream ended>").unwrap(),
        (None, Some(a)) => writeln!(out, "  - <golden ended>\n  + {a}").unwrap(),
        (None, None) => writeln!(out, "  (streams equal; length differs earlier?)").unwrap(),
    }
    for line in act.iter().skip(common + 1).take(3) {
        writeln!(out, "    {line}").unwrap();
    }
    out
}

fn check_scenario(name: &str) {
    let path = golden_path(name);
    let actual = snapshot(name);
    if std::env::var("KUS_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run `KUS_BLESS=1 cargo test -q --test golden_trace`",
            path.display()
        )
    });
    if expected != actual {
        panic!(
            "{name}: trace diverged from golden {}\n{}\nIf the change is intentional, re-bless \
             with KUS_BLESS=1 and review the diff.",
            path.display(),
            first_divergence(&expected, &actual),
        );
    }
}

#[test]
fn golden_ondemand_baseline() {
    check_scenario("ondemand-baseline");
}

#[test]
fn golden_swq_optimized() {
    check_scenario("swq-optimized");
}

#[test]
fn golden_chaos_stalls() {
    check_scenario("chaos-stalls");
}

/// The committed fingerprints, pinned in *source* as well as in the golden
/// files. The golden files can be re-blessed with one environment variable;
/// these constants cannot — changing them requires editing this test, so an
/// unintentional event-stream change (e.g. from a scheduler rewrite) fails
/// even if the goldens were blindly regenerated. Update both together, on
/// purpose.
#[test]
fn golden_fingerprints_pinned_in_source() {
    const PINNED: &[(&str, u64, u64)] = &[
        ("ondemand-baseline", 0x440dedf29d4e87c9, 676),
        ("swq-optimized", 0x1e0aea9385dfef96, 4407),
        ("chaos-stalls", 0x9f24373df863c08a, 2787),
    ];
    for &(name, hash, count) in PINNED {
        let r = run_trace_scenario(name, SEED).expect("canonical scenario");
        let t = r.trace.expect("traced run");
        assert_eq!(
            (t.hash, t.count),
            (hash, count),
            "{name}: trace fingerprint diverged from the source-pinned golden"
        );
    }
}

/// Every canonical scenario has a golden test above — fail loudly if a new
/// scenario is added without pinning it.
#[test]
fn all_scenarios_are_pinned() {
    let pinned = ["ondemand-baseline", "swq-optimized", "chaos-stalls"];
    for s in trace_scenarios() {
        assert!(
            pinned.contains(&s.name),
            "scenario {} has no golden test — add one and bless it",
            s.name
        );
    }
}
