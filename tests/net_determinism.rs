//! The guarantees the kus-net front end must keep:
//!
//! 1. **Fingerprint matrix** — every access mechanism × NIC model pair
//!    reproduces the same trace fingerprint for the same seed, and each
//!    pair's fingerprint is distinct from the wire-less run (the front
//!    end really changed the event stream, deterministically).
//! 2. **Sweep equivalence** — `figures net` artifacts (JSON and CSV) are
//!    byte-identical between `--jobs 1` and `--jobs 4`.
//! 3. **Bitwise inertness** — under every mechanism, a spec that spells
//!    out the default (disabled) NIC and the direct tier chain is
//!    bit-indistinguishable from one that never mentions them.

use kus_bench::net::{run_net_sweep, NetSweepSpec};
use kus_bench::sweep::SweepOptions;
use kus_core::prelude::*;
use kus_load::{
    load_experiment, service_factory, ArrivalProcess, EchoService, LoadSpec, NetConfig,
    NicModelKind, TierSpec,
};

const MECHANISMS: [Mechanism; 3] =
    [Mechanism::OnDemand, Mechanism::Prefetch, Mechanism::SoftwareQueue];

fn base_cfg(mech: Mechanism) -> PlatformConfig {
    PlatformConfig::paper_default()
        .without_replay_device()
        .mechanism(mech)
        .cores(2)
        .fibers_per_core(4)
        .dataset_bytes(1 << 20)
}

fn base_spec() -> LoadSpec {
    LoadSpec::new(ArrivalProcess::Poisson { rate_rps: 600_000.0 })
        .requests(120)
        .queue_capacity(16)
}

fn fingerprint(spec: LoadSpec, cfg: PlatformConfig) -> u64 {
    let exp = load_experiment("net-determinism", spec, cfg, service_factory(|| EchoService::new(64)))
        .expect("valid spec");
    let run = exp.run();
    run.trace.as_ref().expect("traced run").hash
}

/// Mechanism × NIC model: same seed → same fingerprint, and each NIC
/// model perturbs the wire-less baseline stream.
#[test]
fn mechanism_by_nic_model_fingerprints_are_reproducible_and_distinct() {
    for mech in MECHANISMS {
        let bare = fingerprint(base_spec(), base_cfg(mech).seed(33));
        for nic in [NicModelKind::dma(), NicModelKind::nanopu()] {
            let spec = || base_spec().net(NetConfig::on().nic(nic)).tiers(TierSpec::rpc());
            let a = fingerprint(spec(), base_cfg(mech).seed(33));
            let b = fingerprint(spec(), base_cfg(mech).seed(33));
            assert_eq!(a, b, "{mech} × {} must reproduce for one seed", nic.name());
            assert_ne!(
                a, bare,
                "{mech} × {} must actually change the event stream",
                nic.name()
            );
        }
    }
}

/// Delivery jitter is drawn from a labeled stream: same seed reproduces
/// it, a different seed moves it.
#[test]
fn nic_jitter_reproduces_per_seed() {
    let spec = || base_spec().net(NetConfig::on().jitter(kus_sim::Span::from_ns(500)));
    let a = fingerprint(spec(), base_cfg(Mechanism::Prefetch).seed(5));
    let b = fingerprint(spec(), base_cfg(Mechanism::Prefetch).seed(5));
    let c = fingerprint(spec(), base_cfg(Mechanism::Prefetch).seed(6));
    assert_eq!(a, b);
    assert_ne!(a, c, "a different seed must draw different jitter");
}

fn tiny_net_sweep() -> NetSweepSpec {
    NetSweepSpec::new(
        "echo",
        service_factory(|| EchoService::new(64)),
        base_spec(),
        base_cfg(Mechanism::Prefetch).seed(17),
        NetConfig::on(),
    )
    .topologies(&[TierSpec::rpc(), TierSpec::fanout(4)])
    .rates(&[300_000, 3_000_000])
}

/// The `figures net` artifacts are byte-identical at any `--jobs`.
#[test]
fn net_sweep_artifacts_are_byte_identical_across_jobs() {
    let serial = run_net_sweep(&tiny_net_sweep(), &SweepOptions::jobs(1));
    let pooled = run_net_sweep(&tiny_net_sweep(), &SweepOptions::jobs(4));
    assert_eq!(serial.errors().count(), 0, "{:?}", serial.errors().collect::<Vec<_>>());
    assert_eq!(serial.to_json(), pooled.to_json());
    assert_eq!(serial.to_csv(), pooled.to_csv());
    assert_eq!(serial.render_table(), pooled.render_table());
    // Both NIC models over both topologies, plus the baseline front end.
    assert_eq!(serial.knees().len(), 5);
}

/// Spelling out the defaults is invisible under every mechanism: the
/// disabled front end may not shift a single event or draw its RNG.
#[test]
fn disabled_front_end_is_bitwise_inert_under_every_mechanism() {
    for mech in MECHANISMS {
        let plain = fingerprint(base_spec(), base_cfg(mech).seed(44));
        let explicit = fingerprint(
            base_spec().net(NetConfig::default()).tiers(TierSpec::direct()),
            base_cfg(mech).seed(44),
        );
        assert_eq!(plain, explicit, "default net/tiers must be bit-invisible under {mech}");
    }
}
